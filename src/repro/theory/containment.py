"""Query containment and equivalence for the fragments of paper Figure 9.

Figure 9 tabulates the complexity of containment/equivalence per SQL
fragment and semantics:

====================================  ==============  ===========  ==============  ===========
Fragment                              Cont. (set)     Cont. (bag)  Equiv. (set)    Equiv. (bag)
====================================  ==============  ===========  ==============  ===========
Conjunctive queries                   NP-complete     open         NP-complete     graph iso
Unions of conjunctive queries         NP-complete     undecidable  NP-complete     open
CQs with ``≠``/``≤``/``<``            Πᵖ₂-complete    undecidable  Πᵖ₂-complete    undecidable
First-order (full SQL)                undecidable     undecidable  undecidable     undecidable
====================================  ==============  ===========  ==============  ===========

This module implements every *decidable* cell:

* **set containment of CQs** — the Chandra–Merlin homomorphism criterion,
* **set equivalence of CQs** — mutual containment,
* **bag equivalence of CQs** — isomorphism (Chaudhuri & Vardi),
* **set containment/equivalence of UCQs** — Sagiv–Yannakakis disjunct
  mapping,
* **set containment of CQs with order comparisons** — the canonical-
  database-per-linearization construction (exponential, matching Πᵖ₂).

The open/undecidable cells raise :class:`Undecidable` with the citation,
and the Figure 9 benchmark demonstrates the falsification fallback the
library offers for them (random-instance refutation via the engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple, Union


class Undecidable(Exception):
    """Raised for problems with no decision procedure (paper Figure 9)."""


# ---------------------------------------------------------------------------
# Conjunctive queries (standalone lightweight formalism)
# ---------------------------------------------------------------------------

#: A term is a variable name or an integer constant.
Term = Union[str, int]


@dataclass(frozen=True)
class Atom:
    """A relational atom ``rel(t1, ..., tn)``."""

    rel: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.rel}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class CQ:
    """A conjunctive query ``head(x̄) :- body``.

    Head terms must be variables occurring in the body (safety).
    """

    head: Tuple[Term, ...]
    body: Tuple[Atom, ...]

    def variables(self) -> FrozenSet[str]:
        out = {a for atom in self.body for a in atom.args
               if isinstance(a, str)}
        return frozenset(out)

    def validate(self) -> None:
        body_vars = self.variables()
        for term in self.head:
            if isinstance(term, str) and term not in body_vars:
                raise ValueError(f"unsafe head variable {term!r}")

    def __str__(self) -> str:
        head = ", ".join(map(str, self.head))
        body = " ∧ ".join(map(str, self.body))
        return f"q({head}) :- {body}"


@dataclass(frozen=True)
class UCQ:
    """A union of conjunctive queries (all with the same head arity)."""

    disjuncts: Tuple[CQ, ...]

    def __str__(self) -> str:
        return " ∪ ".join(f"[{d}]" for d in self.disjuncts)


# ---------------------------------------------------------------------------
# Homomorphisms — Chandra & Merlin (STOC 1977)
# ---------------------------------------------------------------------------

def find_homomorphism(source: CQ, target: CQ
                      ) -> Optional[Dict[str, Term]]:
    """A homomorphism h : source → target with h(head_s) = head_t.

    ``Q_target ⊆ Q_source`` (set semantics) iff such an h exists —
    ``target`` plays the role of the canonical database.
    """
    if len(source.head) != len(target.head):
        return None
    mapping: Dict[str, Term] = {}
    # Head constraint pins head variables immediately.
    for s_term, t_term in zip(source.head, target.head):
        if isinstance(s_term, str):
            if s_term in mapping and mapping[s_term] != t_term:
                return None
            mapping[s_term] = t_term
        elif s_term != t_term:
            return None

    # Index target atoms by relation for candidate enumeration.
    by_rel: Dict[str, List[Atom]] = {}
    for atom in target.body:
        by_rel.setdefault(atom.rel, []).append(atom)

    atoms = sorted(source.body, key=lambda a: len(by_rel.get(a.rel, ())))

    def extend(index: int, current: Dict[str, Term]
               ) -> Optional[Dict[str, Term]]:
        if index == len(atoms):
            return dict(current)
        atom = atoms[index]
        for candidate in by_rel.get(atom.rel, ()):
            if len(candidate.args) != len(atom.args):
                continue
            added: List[str] = []
            ok = True
            for s_arg, t_arg in zip(atom.args, candidate.args):
                if isinstance(s_arg, str):
                    bound = current.get(s_arg)
                    if bound is None:
                        current[s_arg] = t_arg
                        added.append(s_arg)
                    elif bound != t_arg:
                        ok = False
                        break
                elif s_arg != t_arg:
                    ok = False
                    break
            if ok:
                result = extend(index + 1, current)
                if result is not None:
                    return result
            for var in added:
                del current[var]
        return None

    return extend(0, mapping)


def cq_set_contained(q1: CQ, q2: CQ) -> bool:
    """``Q1 ⊆ Q2`` under set semantics (NP-complete)."""
    return find_homomorphism(q2, q1) is not None


def cq_set_equivalent(q1: CQ, q2: CQ) -> bool:
    """Set equivalence: mutual containment."""
    return cq_set_contained(q1, q2) and cq_set_contained(q2, q1)


def cq_bag_contained(q1: CQ, q2: CQ) -> bool:
    """Bag containment of CQs — a long-standing **open problem**."""
    raise Undecidable(
        "bag containment of conjunctive queries is open "
        "(paper Figure 9, citing Chaudhuri & Vardi)")


def cq_bag_equivalent(q1: CQ, q2: CQ) -> bool:
    """Bag equivalence: isomorphism (graph-isomorphism-complete).

    Chaudhuri & Vardi (PODS 1993): two CQs are bag-equivalent iff they are
    isomorphic.  Implemented as a backtracking bijection search between
    body atoms inducing a variable bijection consistent with the heads.
    """
    if len(q1.head) != len(q2.head) or len(q1.body) != len(q2.body):
        return False
    atoms2: List[Optional[Atom]] = list(q2.body)

    def match(index: int, var_map: Dict[str, str]) -> bool:
        if index == len(q1.body):
            mapped_head = tuple(
                var_map.get(t, t) if isinstance(t, str) else t
                for t in q1.head)
            return mapped_head == q2.head and \
                len(set(var_map.values())) == len(var_map)
        atom = q1.body[index]
        for j, candidate in enumerate(atoms2):
            if candidate is None or candidate.rel != atom.rel \
                    or len(candidate.args) != len(atom.args):
                continue
            added: List[str] = []
            ok = True
            for a1, a2 in zip(atom.args, candidate.args):
                if isinstance(a1, str) and isinstance(a2, str):
                    bound = var_map.get(a1)
                    if bound is None:
                        var_map[a1] = a2
                        added.append(a1)
                    elif bound != a2:
                        ok = False
                        break
                elif a1 != a2:
                    ok = False
                    break
            if ok:
                atoms2[j] = None
                if match(index + 1, var_map):
                    return True
                atoms2[j] = candidate
            for var in added:
                del var_map[var]
        return False

    return match(0, {})


# ---------------------------------------------------------------------------
# Unions of conjunctive queries — Sagiv & Yannakakis (JACM 1980)
# ---------------------------------------------------------------------------

def ucq_set_contained(q1: UCQ, q2: UCQ) -> bool:
    """``Q1 ⊆ Q2`` for UCQs: every disjunct maps into some disjunct."""
    return all(any(cq_set_contained(d1, d2) for d2 in q2.disjuncts)
               for d1 in q1.disjuncts)


def ucq_set_equivalent(q1: UCQ, q2: UCQ) -> bool:
    """Set equivalence of UCQs (NP-complete)."""
    return ucq_set_contained(q1, q2) and ucq_set_contained(q2, q1)


def ucq_bag_contained(q1: UCQ, q2: UCQ) -> bool:
    """Bag containment of UCQs is **undecidable** (Ioannidis & Ramakrishnan)."""
    raise Undecidable(
        "bag containment of unions of conjunctive queries is undecidable "
        "(paper Figure 9, citing Ioannidis & Ramakrishnan 1995)")


# ---------------------------------------------------------------------------
# CQs with order comparisons — van der Meyden (PODS 1992)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CQI:
    """A CQ with strict order comparisons ``x < y`` between variables."""

    cq: CQ
    comparisons: Tuple[Tuple[str, str], ...]   # (x, y) meaning x < y

    def __str__(self) -> str:
        comps = " ∧ ".join(f"{x} < {y}" for x, y in self.comparisons)
        return f"{self.cq}{' ∧ ' + comps if comps else ''}"


def _weak_orders(variables: Sequence[str]) -> Iterator[List[List[str]]]:
    """All ordered set partitions (weak orders) of the variables."""
    variables = list(variables)
    if not variables:
        yield []
        return
    first, rest = variables[0], variables[1:]
    for sub in _weak_orders(rest):
        # Insert `first` into an existing block or as a new block.
        for i in range(len(sub)):
            yield sub[:i] + [sub[i] + [first]] + sub[i + 1:]
        for i in range(len(sub) + 1):
            yield sub[:i] + [[first]] + sub[i:]


def _order_satisfies(rank: Dict[str, int],
                     comparisons: Sequence[Tuple[str, str]]) -> bool:
    return all(rank[x] < rank[y] for x, y in comparisons)


def cqi_set_contained(q1: CQI, q2: CQI) -> bool:
    """``Q1 ⊆ Q2`` for CQs with ``<`` — the Πᵖ₂ canonical-order procedure.

    For every weak order of Q1's variables consistent with Q1's
    comparisons, the canonical database it induces (collapsing tied
    variables) must admit a homomorphism from Q2 whose comparisons hold
    under the order.  Exponential in the variable count, matching the
    Πᵖ₂-completeness of paper Figure 9 (van der Meyden 1992).
    """
    variables = sorted(q1.cq.variables())
    for blocks in _weak_orders(variables):
        rank = {v: i for i, block in enumerate(blocks) for v in block}
        if not _order_satisfies(rank, q1.comparisons):
            continue
        # Canonical database: variables collapse to their block index.
        canonical_body = tuple(
            Atom(a.rel, tuple(
                f"b{rank[t]}" if isinstance(t, str) else t
                for t in a.args))
            for a in q1.cq.body)
        canonical_head = tuple(
            f"b{rank[t]}" if isinstance(t, str) else t for t in q1.cq.head)
        canonical = CQ(canonical_head, canonical_body)
        hom = find_homomorphism(q2.cq, canonical)
        if hom is None:
            return False
        block_rank = {f"b{i}": i for i in range(len(blocks))}
        ok = True
        for x, y in q2.comparisons:
            hx, hy = hom.get(x), hom.get(y)
            if not (isinstance(hx, str) and isinstance(hy, str)
                    and block_rank[hx] < block_rank[hy]):
                ok = False
                break
        if not ok:
            return False
    return True


def cqi_set_equivalent(q1: CQI, q2: CQI) -> bool:
    """Set equivalence of CQs with comparisons (Πᵖ₂-complete)."""
    return cqi_set_contained(q1, q2) and cqi_set_contained(q2, q1)


def cqi_bag_contained(q1: CQI, q2: CQI) -> bool:
    """Undecidable (Jayram, Kolaitis & Vee, PODS 2006)."""
    raise Undecidable(
        "bag containment of CQs with inequalities is undecidable "
        "(paper Figure 9, citing Jayram, Kolaitis & Vee 2006)")


def fo_contained(q1, q2) -> bool:
    """Containment of first-order queries is **undecidable** (Trakhtenbrot)."""
    raise Undecidable(
        "containment of first-order queries is undecidable "
        "(Trakhtenbrot 1950; paper Figure 9 and Sec. 7)")


# ---------------------------------------------------------------------------
# Query generators for the Figure 9 scaling study
# ---------------------------------------------------------------------------

def chain_query(length: int, head_first: bool = True) -> CQ:
    """A path query ``q(x0[,xn]) :- E(x0,x1) ∧ ... ∧ E(x_{n-1},x_n)``."""
    atoms = tuple(Atom("E", (f"x{i}", f"x{i+1}")) for i in range(length))
    head = ("x0",) if head_first else ("x0", f"x{length}")
    return CQ(head, atoms)


def cycle_query(length: int) -> CQ:
    """A cycle query: chain of length n closed back to x0 (boolean head)."""
    atoms = [Atom("E", (f"x{i}", f"x{(i+1) % length}"))
             for i in range(length)]
    return CQ((), tuple(atoms))


def star_query(points: int) -> CQ:
    """A star: center joined to ``points`` leaves."""
    atoms = tuple(Atom("E", ("c", f"x{i}")) for i in range(points))
    return CQ(("c",), atoms)


def clique_query(size: int) -> CQ:
    """A clique query on ``size`` variables (hard hom instances)."""
    atoms = tuple(Atom("E", (f"x{i}", f"x{j}"))
                  for i in range(size) for j in range(size) if i != j)
    return CQ((), atoms)


def rename_apart(q: CQ, suffix: str) -> CQ:
    """A fresh-variable copy of a CQ (alpha-variant)."""
    def rn(term: Term) -> Term:
        return f"{term}{suffix}" if isinstance(term, str) else term
    return CQ(tuple(rn(t) for t in q.head),
              tuple(Atom(a.rel, tuple(rn(t) for t in a.args))
                    for a in q.body))


# ---------------------------------------------------------------------------
# Bridge to HoTTSQL — cross-validation of the Sec. 5.2 procedure
# ---------------------------------------------------------------------------

def cq_to_hottsql(q: CQ, arities: Dict[str, int]):
    """Compile a CQ into a core HoTTSQL ``DISTINCT SELECT`` query.

    Used by the test suite to cross-check the paper's decision procedure
    (:func:`repro.core.conjunctive.decide_cq`) against the classical
    Chandra–Merlin criterion on the same query pairs.
    """
    from ..core import ast
    from ..core.schema import INT, Leaf, Node

    def table_schema(arity: int):
        schema = Leaf(INT)
        for _ in range(arity - 1):
            schema = Node(Leaf(INT), schema)
        return schema

    def column_proj(arity: int, index: int) -> "ast.Projection":
        steps: List[ast.Projection] = [ast.RIGHT] * index
        if index < arity - 1:
            steps.append(ast.LEFT)
        return ast.path(*steps) if steps else ast.STAR

    if not q.body:
        raise ValueError("cannot compile a body-less CQ to SQL")

    # FROM clause: right-nested product; atom i's tuple path within it.
    count = len(q.body)
    tables = [ast.Table(atom.rel, table_schema(arities[atom.rel]))
              for atom in q.body]
    from_query = ast.from_clauses(*tables)

    def atom_tuple_path(index: int) -> Tuple[ast.Projection, ...]:
        if count == 1:
            return ()
        steps = [ast.RIGHT] * index
        if index < count - 1:
            steps.append(ast.LEFT)
        return tuple(steps)

    # First occurrence of each variable; equalities for later occurrences.
    first_occurrence: Dict[str, Tuple[int, int]] = {}
    equalities: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    constants: List[Tuple[Tuple[int, int], int]] = []
    for ai, atom in enumerate(q.body):
        for pi, term in enumerate(atom.args):
            if isinstance(term, str):
                if term in first_occurrence:
                    equalities.append((first_occurrence[term], (ai, pi)))
                else:
                    first_occurrence[term] = (ai, pi)
            else:
                constants.append(((ai, pi), term))

    def position_expr(position: Tuple[int, int]) -> "ast.Expression":
        ai, pi = position
        arity = arities[q.body[ai].rel]
        proj = ast.path(ast.RIGHT, *atom_tuple_path(ai),
                        column_proj(arity, pi))
        return ast.P2E(proj, INT)

    predicates: List[ast.Predicate] = []
    for pos1, pos2 in equalities:
        predicates.append(ast.PredEq(position_expr(pos1),
                                     position_expr(pos2)))
    for pos, value in constants:
        predicates.append(ast.PredEq(position_expr(pos),
                                     ast.Const(value, INT)))

    body = from_query
    if predicates:
        body = ast.Where(body, ast.and_(*predicates))

    if q.head:
        head_projs = []
        for term in q.head:
            if isinstance(term, str):
                ai, pi = first_occurrence[term]
                arity = arities[q.body[ai].rel]
                head_projs.append(ast.path(
                    ast.RIGHT, *atom_tuple_path(ai), column_proj(arity, pi)))
            else:
                head_projs.append(ast.E2P(ast.Const(term, INT), INT))
        projection = ast.proj_tuple(*head_projs)
    else:
        projection = ast.EMPTYP
    return ast.Distinct(ast.Select(projection, body))
