"""Aggregation rewrite rules (paper Sec. 5.1.2, Figure 8 row "Aggregation").

The rule: filtering a grouped aggregate on its grouping key commutes with
pushing the filter below the grouping —

    SELECT * FROM (SELECT k, SUM(b) FROM R GROUP BY k) WHERE k = ℓ
  ≡ SELECT k, SUM(b) FROM R WHERE k = ℓ GROUP BY k

GROUP BY is desugared per Sec. 4.2 into a DISTINCT projection with a
correlated subquery feeding SUM; the proof is the paper's: squash
bi-implication plus rewriting ``⟦k⟧ t2 = ⟦ℓ⟧`` *inside* the aggregate's
body using the ambient equalities (aggregate congruence).
"""

from __future__ import annotations

import random
from typing import Tuple

from ..core import ast
from ..core.schema import INT, Leaf, SVar
from .common import attr_expr, const_expr, groupby_agg, \
    standard_interpretation, table
from .rule import RewriteRule

_S1 = SVar("s1")


def _groupby_filter_pushdown() -> RewriteRule:
    r = table("R", _S1)
    k = ast.PVar("k", _S1, Leaf(INT))
    b = ast.PVar("b", _S1, Leaf(INT))
    ell = const_expr("l")

    grouped = groupby_agg(r, k, b, "SUM")
    # Filter on the group key: the group tuple is (key, sum) at Right.
    lhs = ast.Where(grouped,
                    ast.PredEq(attr_expr(ast.RIGHT, ast.LEFT), ell))

    filtered = ast.Where(r, ast.PredEq(
        ast.P2E(ast.Compose(ast.RIGHT, k), INT), ell))
    rhs = groupby_agg(filtered, k, b, "SUM")

    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R",), attrs=("k", "b"),
                                         consts=("l",))
        return lhs, rhs, interp

    return RewriteRule(
        name="groupby_filter_pushdown", category="aggregation",
        description="Key filter pushes below GROUP BY + SUM (paper "
                    "Sec. 5.1.2): proved by squash bi-implication with "
                    "congruence rewriting inside the SUM body.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "squash_biimpl",
                       "instantiate_witness", "agg_congruence",
                       "rewrite_equalities"),
        paper_ref="Sec. 5.1.2",
        instantiate=factory)


def having_filter_pushdown() -> RewriteRule:
    """HAVING on the group key ≡ WHERE pushed below the grouping.

    The exact shape the SQL front end's HAVING desugaring produces — a
    re-projecting SELECT over the filtered group relation — so certifying
    it certifies the desugaring's flagship rewrite:

        SELECT k, s FROM (SELECT k, SUM(b) s FROM R GROUP BY k) h
        WHERE k = ℓ
      ≡ SELECT k, SUM(b) s FROM R WHERE k = ℓ GROUP BY k

    This extends Figure 8's aggregation row (hence category ``extended``:
    it does not count toward the paper's 23).
    """
    r = table("R", _S1)
    k = ast.PVar("k", _S1, Leaf(INT))
    b = ast.PVar("b", _S1, Leaf(INT))
    ell = const_expr("l")

    grouped = groupby_agg(r, k, b, "SUM")
    filtered_groups = ast.Where(
        grouped, ast.PredEq(attr_expr(ast.RIGHT, ast.LEFT), ell))
    # The HAVING desugaring's outer SELECT re-emits the (key, sum) tuple.
    reproject = ast.proj_tuple(ast.path(ast.RIGHT, ast.LEFT),
                               ast.path(ast.RIGHT, ast.RIGHT))
    lhs = ast.Select(reproject, filtered_groups)

    filtered = ast.Where(r, ast.PredEq(
        ast.P2E(ast.Compose(ast.RIGHT, k), INT), ell))
    rhs = groupby_agg(filtered, k, b, "SUM")

    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R",), attrs=("k", "b"),
                                         consts=("l",))
        return lhs, rhs, interp

    return RewriteRule(
        name="having_filter_pushdown", category="extended",
        description="HAVING on the group key filters the grouped "
                    "subquery; pushing it below GROUP BY + SUM is the "
                    "Sec. 5.1.2 pushdown composed with projection "
                    "re-emission (the SQL frontend's HAVING desugar "
                    "shape).",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "squash_biimpl",
                       "instantiate_witness", "agg_congruence",
                       "rewrite_equalities", "proj_identity"),
        paper_ref="Secs. 4.2, 5.1.2",
        instantiate=factory)


def aggregation_rules() -> Tuple[RewriteRule, ...]:
    """The aggregation rule of Figure 8."""
    return (_groupby_filter_pushdown(),)
