"""End-to-end integration: a TPC-H-flavored analytic workload.

The paper motivates aggregation rules with TPC-H (Sec. 5.1.2: 16 of 22
queries group, 21 aggregate).  This suite runs a synthetic
customer/orders/lineitem schema through the whole stack:

* SQL compilation (joins, EXISTS, GROUP BY, unions),
* evaluation cross-checked between the K-relation and list evaluators,
* cost-based optimization with prover certification,
* semantic invariants (pushdown laws instantiated on real queries).
"""

from collections import Counter

import pytest

from repro.core.equivalence import queries_equivalent
from repro.core.schema import INT, STRING
from repro.engine import Database, eval_query_list, run_query
from repro.optimizer import TableStats, optimize
from repro.semiring import NAT
from repro.sql import Catalog, compile_sql


@pytest.fixture(scope="module")
def warehouse():
    catalog = Catalog()
    catalog.add_table("Customer", [("ckey", INT), ("nation", INT),
                                   ("segment", STRING)])
    catalog.add_table("Orders", [("okey", INT), ("ckey", INT),
                                 ("total", INT), ("year", INT)])
    catalog.add_table("Lineitem", [("okey", INT), ("part", INT),
                                   ("qty", INT), ("price", INT)])

    db = Database(NAT)
    db.create_table("Customer", catalog.schema_of("Customer"), [
        [c, c % 3, "retail" if c % 2 else "corp"] for c in range(8)
    ])
    db.create_table("Orders", catalog.schema_of("Orders"), [
        [o, o % 8, 100 + 37 * o, 1995 + (o % 3)] for o in range(20)
    ])
    db.create_table("Lineitem", catalog.schema_of("Lineitem"), [
        [li % 20, li % 5, 1 + li % 4, 10 + li % 7] for li in range(50)
    ])
    return catalog, db


QUERIES = {
    "q_filter_join": (
        "SELECT c.ckey, o.total FROM Customer c, Orders o "
        "WHERE c.ckey = o.ckey AND o.year = 1995 AND c.nation = 1"),
    "q_three_way": (
        "SELECT c.ckey, l.part FROM Customer c, Orders o, Lineitem l "
        "WHERE c.ckey = o.ckey AND o.okey = l.okey AND l.qty > 2"),
    "q_exists": (
        "SELECT ckey FROM Customer WHERE EXISTS "
        "(SELECT * FROM Orders o WHERE o.ckey = Customer.ckey "
        "AND o.total > 500)"),
    "q_groupby": (
        "SELECT ckey, SUM(total) FROM Orders GROUP BY ckey"),
    "q_groupby_filtered": (
        "SELECT ckey, COUNT(total) FROM Orders WHERE year = 1996 "
        "GROUP BY ckey"),
    "q_union": (
        "(SELECT ckey FROM Orders WHERE total > 600) UNION ALL "
        "(SELECT ckey FROM Orders WHERE year = 1997)"),
    "q_except": (
        "SELECT ckey FROM Customer EXCEPT SELECT ckey FROM Orders "
        "WHERE total > 700"),
    "q_distinct_subquery": (
        "SELECT DISTINCT v.ckey FROM "
        "(SELECT o.ckey AS ckey, l.qty AS qty FROM Orders o, Lineitem l "
        " WHERE o.okey = l.okey) AS v WHERE v.qty > 1"),
}


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_queries_compile_and_run(warehouse, name):
    catalog, db = warehouse
    resolved = compile_sql(QUERIES[name], catalog)
    out = run_query(resolved.query, db.interpretation())
    # Every workload query is satisfiable on the synthetic instance.
    assert len(out) > 0, name


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_two_evaluators_agree(warehouse, name):
    catalog, db = warehouse
    resolved = compile_sql(QUERIES[name], catalog)
    interp = db.interpretation()
    k_out = Counter()
    for row, mult in run_query(resolved.query, interp).items():
        k_out[row] += mult
    list_out = Counter(eval_query_list(resolved.query, interp))
    assert k_out == list_out, name


@pytest.mark.parametrize("name", ["q_filter_join", "q_three_way",
                                  "q_union"])
def test_optimizer_certifies_workload(warehouse, name):
    catalog, db = warehouse
    resolved = compile_sql(QUERIES[name], catalog)
    stats = TableStats.from_database(db)
    result = optimize(resolved.query, stats, max_plans=200)
    assert result.certified is True
    interp = db.interpretation()
    assert run_query(result.best_plan, interp) == \
        run_query(resolved.query, interp)


def test_pushdown_instances_prove_on_workload(warehouse):
    """The selection-pushdown law instantiated on a real workload query
    still proves (concrete schemas, concrete predicates)."""
    catalog, _ = warehouse
    merged = compile_sql(
        "SELECT c.ckey FROM Customer c, Orders o "
        "WHERE c.ckey = o.ckey AND o.year = 1995", catalog)
    pushed = compile_sql(
        "SELECT c.ckey FROM Customer c, "
        "(SELECT * FROM Orders WHERE year = 1995) AS o "
        "WHERE c.ckey = o.ckey", catalog)
    assert queries_equivalent(merged.query, pushed.query)


def test_groupby_filter_pushdown_on_workload(warehouse):
    """The Sec. 5.1.2 aggregation rule, instantiated concretely."""
    catalog, db = warehouse
    outer_filter = compile_sql(
        "SELECT * FROM (SELECT ckey, SUM(total) AS s FROM Orders "
        "GROUP BY ckey) AS g WHERE g.ckey = 3", catalog)
    inner_filter = compile_sql(
        "SELECT ckey, SUM(total) FROM Orders WHERE ckey = 3 "
        "GROUP BY ckey", catalog)
    interp = db.interpretation()
    assert run_query(outer_filter.query, interp) == \
        run_query(inner_filter.query, interp)
    # And symbolically: the generic rule was already proved; the concrete
    # instance is decided by the engine too.
    assert queries_equivalent(outer_filter.query, inner_filter.query)


def test_exists_decorrelation_instance(warehouse):
    """EXISTS-based semijoin equals the DISTINCT-join decorrelation on
    the instance (the magic-set move, concretely)."""
    catalog, db = warehouse
    correlated = compile_sql(QUERIES["q_exists"], catalog)
    decorrelated = compile_sql(
        "SELECT DISTINCT c.ckey FROM Customer c, Orders o "
        "WHERE o.ckey = c.ckey AND o.total > 500", catalog)
    interp = db.interpretation()
    # Customer.ckey is unique on this instance, so the correlated EXISTS
    # and the DISTINCT join agree.
    assert run_query(correlated.query, interp).support() == \
        run_query(decorrelated.query, interp).support()
