"""Oracle validation across semirings.

Equations proved in the univalent semantics hold for every commutative
semiring interpretation.  The oracle re-checks each rule under set
semantics (BOOL) and provenance polynomials (ℕ[X], the free semiring) —
validating the rules once for all semirings.  Aggregation rules fold
multiplicities into values, so they only run where counts exist (NAT).
"""

import random

import pytest

from repro.core import ast
from repro.engine.random_instances import find_counterexample
from repro.rules import all_rules
from repro.semiring import BOOL, PROVENANCE
from repro.semiring.provenance import Polynomial


def _contains_aggregate(rule) -> bool:
    seen = set()

    def walk(node) -> bool:
        if id(node) in seen:
            return False
        seen.add(id(node))
        if isinstance(node, ast.Agg):
            return True
        for field_name in getattr(node, "__dataclass_fields__", {}):
            value = getattr(node, field_name)
            children = value if isinstance(value, tuple) else (value,)
            for child in children:
                if hasattr(child, "__dataclass_fields__") and walk(child):
                    return True
        return False

    return walk(rule.lhs) or walk(rule.rhs)


def _reannotated_factory(rule, semiring, annotator):
    def factory(rng: random.Random):
        lhs, rhs, interp = rule.instantiate(rng)
        for name, rel in list(interp.relations.items()):
            rows = sorted(rel.items(), key=lambda kv: repr(kv[0]))
            converted = {row: annotator(name, row, mult)
                         for row, mult in rows}
            from repro.semiring import KRelation
            interp.relations[name] = KRelation(semiring, converted)
        return lhs, rhs, interp
    return factory


NON_AGG_RULES = [r for r in all_rules() if not _contains_aggregate(r)]

# Key hypotheses force *idempotent* annotations (R is set-valued: the
# paper's self-join equation gives n = n²).  In BOOL that holds for free;
# in ℕ[X] fresh variables are not idempotent, so the hypothesis cannot be
# modelled by distinct-variable annotation — those rules are validated
# under NAT/BOOL only.
PROVENANCE_RULES = [r for r in NON_AGG_RULES if not r.hypotheses.keys]


@pytest.mark.parametrize("rule", NON_AGG_RULES, ids=lambda r: r.name)
def test_rule_holds_under_set_semantics(rule):
    factory = _reannotated_factory(
        rule, BOOL, lambda name, row, mult: mult > 0)
    assert find_counterexample(factory, trials=12, semiring=BOOL) is None


@pytest.mark.parametrize("rule", PROVENANCE_RULES, ids=lambda r: r.name)
def test_rule_holds_under_provenance(rule):
    def annotator(name, row, mult):
        return (Polynomial.variable(f"{name}:{row}")
                * Polynomial.constant(mult))
    factory = _reannotated_factory(rule, PROVENANCE, annotator)
    assert find_counterexample(factory, trials=8,
                               semiring=PROVENANCE) is None


def test_aggregate_rules_identified():
    # Exactly the two rules with SUM/COUNT bodies carry aggregates.
    agg_rules = {r.name for r in all_rules() if _contains_aggregate(r)}
    assert agg_rules == {"groupby_filter_pushdown", "semijoin_push_agg"}
