"""Structured verdicts for the tiered verification pipeline.

The prover alone answers "equal" or "don't know"; pairing it with the
bounded-exhaustive disprover (Cosette's architecture) upgrades every check
to one of three *structured* outcomes:

* ``PROVED`` — the engine found a proof (sound for all instances),
* ``DISPROVED`` — a concrete counterexample instance separates the two
  queries (carried along, replayable),
* ``UNKNOWN`` — neither, but with a quantified guarantee: *no
  counterexample exists up to the disprover's bound*.

Everything in this module is plain data — JSON-serializable and picklable —
so verdicts can cross the proof cache and the multiprocessing boundary of
the batch service.  Live objects (interpretations holding metavariable
callables) stay in :attr:`Verdict.live_counterexample`, which is never
serialized.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class Status(enum.Enum):
    """The three possible answers of the decision pipeline."""

    PROVED = "PROVED"
    DISPROVED = "DISPROVED"
    UNKNOWN = "UNKNOWN"


@dataclass(frozen=True)
class BoundInfo:
    """The instance space a bounded-exhaustive search covered."""

    max_rows: int
    max_multiplicity: int
    domains: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    instances_checked: int
    exhausted: bool

    def describe(self) -> str:
        coverage = "exhausted" if self.exhausted else "truncated"
        return (f"≤{self.max_rows} rows × ≤{self.max_multiplicity} "
                f"multiplicity per table ({self.instances_checked} "
                f"instance(s), {coverage})")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_rows": self.max_rows,
            "max_multiplicity": self.max_multiplicity,
            "domains": [[name, list(values)] for name, values in self.domains],
            "instances_checked": self.instances_checked,
            "exhausted": self.exhausted,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "BoundInfo":
        return BoundInfo(
            max_rows=data["max_rows"],
            max_multiplicity=data["max_multiplicity"],
            domains=tuple((name, tuple(values))
                          for name, values in data["domains"]),
            instances_checked=data["instances_checked"],
            exhausted=data["exhausted"],
        )


@dataclass(frozen=True)
class CounterexampleRecord:
    """A replayable, serialization-safe counterexample.

    Table contents are stored as *flat* rows (left-to-right leaf values,
    the inverse of :func:`repro.core.schema.tuple_of`), so the record
    survives a JSON round-trip where nested tuples would collapse into
    lists.  ``disagreements`` lists the tuples on which the two sides'
    multiplicities differ, pre-rendered for display.
    """

    #: table name → list of (flat row, multiplicity) pairs.
    tables: Tuple[Tuple[str, Tuple[Tuple[Tuple[Any, ...], int], ...]], ...]
    #: (tuple repr, lhs multiplicity repr, rhs multiplicity repr) triples.
    disagreements: Tuple[Tuple[str, str, str], ...]
    note: str = ""

    def describe(self) -> str:
        lines = ["counterexample instance:"]
        for name, rows in self.tables:
            rendered = ", ".join(f"{list(row)}×{mult}" for row, mult in rows)
            lines.append(f"  {name} = {{{rendered or 'empty'}}}")
        for row, left, right in self.disagreements:
            lines.append(f"  tuple {row}: lhs multiplicity {left}, "
                         f"rhs multiplicity {right}")
        if self.note:
            lines.append(f"  ({self.note})")
        return "\n".join(lines)

    def swap_sides(self) -> "CounterexampleRecord":
        """The same instance with the lhs/rhs multiplicity columns swapped.

        Cache keys are symmetric in the two queries, so a hit may serve a
        caller whose (Q1, Q2) orientation is the reverse of the producing
        call's; the record's side labels must follow the caller.
        """
        return CounterexampleRecord(
            tables=self.tables,
            disagreements=tuple((row, right, left)
                                for row, left, right in self.disagreements),
            note=self.note,
        )

    def table_rows(self, name: str) -> Tuple[Tuple[Tuple[Any, ...], int], ...]:
        for table_name, rows in self.tables:
            if table_name == name:
                return rows
        raise KeyError(f"no table {name!r} in counterexample")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tables": [[name, [[list(row), mult] for row, mult in rows]]
                       for name, rows in self.tables],
            "disagreements": [list(d) for d in self.disagreements],
            "note": self.note,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "CounterexampleRecord":
        return CounterexampleRecord(
            tables=tuple(
                (name, tuple((tuple(row), mult) for row, mult in rows))
                for name, rows in data["tables"]),
            disagreements=tuple(tuple(d) for d in data["disagreements"]),
            note=data.get("note", ""),
        )


@dataclass
class Verdict:
    """The pipeline's answer for one (Q1, Q2) equivalence question."""

    status: Status
    #: the stage that decided: ``cache`` / ``alpha-hash`` / ``conjunctive``
    #: / ``prover`` / ``disprover`` (or ``none`` when every stage punted).
    stage: str
    fingerprint: str = ""
    cached: bool = False
    engine_steps: int = 0
    counterexample: Optional[CounterexampleRecord] = None
    bound: Optional[BoundInfo] = None
    #: stage name → seconds spent, in execution order.
    timings: Dict[str, float] = field(default_factory=dict)
    #: interned-kernel counters for this check: ``normalize`` memo
    #: hits/misses charged to the question and the live canonical node
    #: count when it was answered (``check --verbose`` prints these
    #: alongside the stage timings).
    kernel_counters: Dict[str, int] = field(default_factory=dict)
    detail: str = ""
    #: orientation tags: digests identifying which input the verdict's
    #: counterexample calls "lhs"/"rhs" — by alpha-canonical normal form
    #: and by query repr.  A reader swaps the record only on a *positive*
    #: match with the opposite side (an unrecognized digest proves
    #: nothing: alpha-equivalent queries have different reprs).
    lhs_norm_digest: str = ""
    lhs_repr_digest: str = ""
    rhs_repr_digest: str = ""
    #: live engine counterexample (with interpretation callables); never
    #: serialized, stripped before crossing process boundaries.
    live_counterexample: Any = field(default=None, repr=False, compare=False)

    @property
    def proved(self) -> bool:
        return self.status is Status.PROVED

    @property
    def disproved(self) -> bool:
        return self.status is Status.DISPROVED

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())

    def describe(self) -> str:
        head = (f"{self.status.value}  (stage: {self.stage}"
                f"{', cached' if self.cached else ''}, "
                f"{self.engine_steps} engine steps, "
                f"{self.total_seconds * 1e3:.1f} ms)")
        parts = [head]
        if self.detail:
            parts.append(self.detail)
        if self.counterexample is not None:
            parts.append(self.counterexample.describe())
        if self.status is Status.UNKNOWN and self.bound is not None \
                and self.bound.exhausted:
            parts.append("no counterexample up to bound "
                         + self.bound.describe())
        return "\n".join(parts)

    def strip_live(self) -> "Verdict":
        """Drop the non-picklable live counterexample (for IPC)."""
        self.live_counterexample = None
        return self

    def oriented_for(self, norm_digest: Optional[str] = None,
                     repr_digest: Optional[str] = None) -> "Verdict":
        """This verdict from the caller's (Q1, Q2) orientation.

        Pass the caller's own lhs digest (either kind).  The norm digest
        is alpha-canonical, so disagreement with the stored lhs tag means
        the caller's pair is reversed.  A repr digest only proves reversal
        by *matching the stored rhs* — a digest matching neither side
        (an alpha-equivalent query with different text) is inconclusive
        and the record is left as produced.  With no counterexample the
        verdict is returned unchanged.
        """
        if self.counterexample is None:
            return self
        swap = False
        if norm_digest and self.lhs_norm_digest:
            swap = norm_digest != self.lhs_norm_digest
        elif repr_digest:
            swap = bool(self.rhs_repr_digest) \
                and repr_digest == self.rhs_repr_digest \
                and repr_digest != self.lhs_repr_digest
        if not swap:
            return self
        copy = Verdict(**{**self.__dict__,
                          "counterexample": self.counterexample.swap_sides(),
                          "lhs_norm_digest": norm_digest or "",
                          "lhs_repr_digest": self.rhs_repr_digest,
                          "rhs_repr_digest": self.lhs_repr_digest,
                          "live_counterexample": None})
        return copy

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status.value,
            "stage": self.stage,
            "fingerprint": self.fingerprint,
            "engine_steps": self.engine_steps,
            "counterexample": (None if self.counterexample is None
                               else self.counterexample.to_dict()),
            "bound": None if self.bound is None else self.bound.to_dict(),
            "kernel_counters": dict(self.kernel_counters),
            "detail": self.detail,
            "lhs_norm_digest": self.lhs_norm_digest,
            "lhs_repr_digest": self.lhs_repr_digest,
            "rhs_repr_digest": self.rhs_repr_digest,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Verdict":
        cx = data.get("counterexample")
        bound = data.get("bound")
        return Verdict(
            status=Status(data["status"]),
            stage=data["stage"],
            fingerprint=data.get("fingerprint", ""),
            engine_steps=data.get("engine_steps", 0),
            counterexample=(None if cx is None
                            else CounterexampleRecord.from_dict(cx)),
            bound=None if bound is None else BoundInfo.from_dict(bound),
            kernel_counters=dict(data.get("kernel_counters") or {}),
            detail=data.get("detail", ""),
            lhs_norm_digest=data.get("lhs_norm_digest", ""),
            lhs_repr_digest=data.get("lhs_repr_digest", ""),
            rhs_repr_digest=data.get("rhs_repr_digest", ""),
        )


#: Fields of Verdict.to_dict the proof cache persists; kept in one place so
#: cache entries and IPC payloads never drift apart.
__all__ = [
    "BoundInfo",
    "CounterexampleRecord",
    "Status",
    "Verdict",
]
