"""Pretty-printer round-trips the paper's notation."""

from repro.core import ast
from repro.core.denote import denote_closed
from repro.core.schema import EMPTY, INT, Leaf, Node, SVar
from repro.sql.pretty import (
    denotation_to_str,
    expression_to_str,
    predicate_to_str,
    projection_to_str,
    query_to_str,
)

SR = SVar("sR")
R = ast.Table("R", SR)
S = ast.Table("S", SR)


class TestQueryRendering:
    def test_table(self):
        assert query_to_str(R) == "R"

    def test_union_all(self):
        assert query_to_str(ast.UnionAll(R, S)) == "(R UNION ALL S)"

    def test_except_and_distinct(self):
        assert query_to_str(ast.Distinct(ast.Except(R, S))) == \
            "DISTINCT (R EXCEPT S)"

    def test_where_with_predicate_var(self):
        b = ast.PredVar("b", Node(EMPTY, SR))
        assert query_to_str(ast.Where(R, b)) == "(R WHERE b)"

    def test_select_from(self):
        q = ast.Select(ast.path(ast.RIGHT, ast.LEFT), ast.Product(R, S))
        assert query_to_str(q) == "SELECT Right.Left FROM R, S"


class TestPredicateRendering:
    def test_connectives(self):
        t = ast.PredTrue()
        f = ast.PredFalse()
        assert predicate_to_str(ast.PredAnd(t, f)) == "(TRUE AND FALSE)"
        assert predicate_to_str(ast.PredOr(t, f)) == "(TRUE OR FALSE)"
        assert predicate_to_str(ast.PredNot(t)) == "NOT TRUE"

    def test_exists(self):
        assert predicate_to_str(ast.Exists(R)) == "EXISTS (R)"

    def test_castpred(self):
        b = ast.PredVar("b", SR)
        assert predicate_to_str(ast.CastPred(ast.RIGHT, b)) == \
            "CASTPRED Right b"

    def test_comparison(self):
        pred = ast.PredFunc("lt", (ast.Const(1, INT), ast.Const(2, INT)))
        assert predicate_to_str(pred) == "lt(1, 2)"


class TestExpressionRendering:
    def test_p2e_and_const(self):
        expr = ast.P2E(ast.LEFT, INT)
        assert expression_to_str(expr) == "P2E Left"
        assert expression_to_str(ast.Const(3, INT)) == "3"

    def test_agg(self):
        agg = ast.Agg("SUM", ast.Table("V", Leaf(INT)), INT)
        assert expression_to_str(agg) == "SUM(V)"

    def test_castexpr(self):
        e = ast.CastExpr(ast.EMPTYP, ast.ExprVar("l", EMPTY, INT))
        assert expression_to_str(e) == "CASTEXPR Empty l"


class TestProjectionRendering:
    def test_paths(self):
        assert projection_to_str(ast.path(ast.LEFT, ast.RIGHT)) == \
            "Left.Right"
        assert projection_to_str(ast.STAR) == "*"
        assert projection_to_str(ast.EMPTYP) == "Empty"

    def test_duplicate(self):
        p = ast.Duplicate(ast.LEFT, ast.RIGHT)
        assert projection_to_str(p) == "(Left, Right)"

    def test_pvar(self):
        assert projection_to_str(ast.PVar("k", SR, Leaf(INT))) == "k"


class TestDenotationRendering:
    def test_figure_1_shape(self):
        b = ast.PredVar("b", Node(EMPTY, SR))
        q = ast.Where(ast.UnionAll(R, S), b)
        rendered = denotation_to_str(denote_closed(q))
        # λ g t. (⟦R⟧ t + ⟦S⟧ t) × ⟦b⟧ ((g, t))
        assert rendered.startswith("λ ")
        assert "⟦R⟧" in rendered and "⟦S⟧" in rendered and "⟦b⟧" in rendered
        assert "+" in rendered and "×" in rendered
