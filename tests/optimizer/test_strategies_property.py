"""Property suite over both planner strategies.

The ISSUE's contract, stated as hypotheses properties:

* every extracted plan — either strategy, any budget — is certified
  ``PROVED`` against its input through the verification pipeline
  (zero certification failures across the corpus);
* equality saturation's chosen plan never costs more than BFS's on the
  same stats (saturation runs to fixpoint; its e-graph then contains
  every BFS-reachable plan, and the Pareto extractor is cost-optimal
  over the e-graph).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.schema import INT
from repro.optimizer import TableStats, optimize, plan_cost
from repro.solver import Status, default_pipeline
from repro.sql import Catalog, compile_sql


@pytest.fixture(scope="module")
def catalog():
    cat = Catalog()
    cat.add_table("Emp", [("eid", INT), ("did", INT), ("age", INT)])
    cat.add_table("Dept", [("did", INT), ("budget", INT)])
    return cat


#: Plan shapes covering every transformation family: splits, merges,
#: pushdown through products, distribution over unions, DISTINCT
#: collapse, duplicate conjuncts — at root and nested positions.
CORPUS = (
    "SELECT e.eid FROM Emp e, Dept d "
    "WHERE e.did = d.did AND d.budget > 100 AND e.age < 30",
    "SELECT eid FROM Emp WHERE age < 30 AND did = 2",
    "SELECT eid FROM Emp WHERE eid = 1 AND eid = 1",
    "SELECT e.eid FROM Emp AS e WHERE e.age = 1 AND e.did = 2 "
    "AND e.eid = 3",
    "SELECT a.eid FROM Emp a, Emp b WHERE a.did = b.did AND a.age < 30",
    "SELECT u.eid FROM (SELECT eid FROM Emp UNION ALL "
    "SELECT eid FROM Emp) AS u WHERE u.eid = 1",
    "SELECT DISTINCT e.did FROM Emp e WHERE e.age < 30 AND e.eid > 2",
    "SELECT e.eid FROM Emp e, Dept d WHERE e.did = d.did AND "
    "d.budget > 100 AND e.age < 30 AND e.eid > 2 AND e.eid > 2",
)

queries = st.sampled_from(CORPUS)
strategies_ = st.sampled_from(["saturation", "bfs"])
budgets = st.integers(min_value=2, max_value=300)
iteration_budgets = st.one_of(st.none(), st.integers(1, 8))
table_stats = st.builds(
    TableStats,
    st.fixed_dictionaries({"Emp": st.floats(1.0, 10000.0),
                           "Dept": st.floats(1.0, 500.0)}))


class TestCertification:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(sql=queries, strategy=strategies_, budget=budgets,
           iterations=iteration_budgets)
    def test_every_extracted_plan_is_proved(self, catalog, sql, strategy,
                                            budget, iterations):
        query = compile_sql(sql, catalog).query
        kwargs = {"iterations": iterations} if strategy == "saturation" \
            else {}
        result = optimize(query, TableStats({"Emp": 16.0, "Dept": 4.0}),
                          max_plans=budget, certify=False,
                          strategy=strategy, **kwargs)
        verdict = default_pipeline().check(query, result.best_plan,
                                           prove_only=True)
        assert verdict.status is Status.PROVED, (
            f"certification failure: {strategy} budget={budget} {sql!r}")


class TestCostDominance:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(sql=queries, stats=table_stats, bfs_budget=budgets)
    def test_saturation_never_costs_more_than_bfs(self, catalog, sql,
                                                  stats, bfs_budget):
        query = compile_sql(sql, catalog).query
        bfs = optimize(query, stats, max_plans=bfs_budget, certify=False,
                       strategy="bfs")
        sat = optimize(query, stats, max_plans=2000, certify=False,
                       strategy="saturation", iterations=20)
        assert sat.best_cost <= bfs.best_cost + 1e-6
        # And the reported cost is the honest tree cost of the plan.
        assert sat.best_cost == pytest.approx(plan_cost(sat.best_plan,
                                                        stats))

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(sql=queries, stats=table_stats)
    def test_both_strategies_never_worse_than_original(self, catalog, sql,
                                                       stats):
        query = compile_sql(sql, catalog).query
        original = plan_cost(query, stats)
        for strategy in ("saturation", "bfs"):
            result = optimize(query, stats, certify=False,
                              strategy=strategy)
            assert result.best_cost <= original + 1e-6
