"""EXPLAIN: render a physical plan tree with cost annotations.

The conventional optimizer affordance — a human-readable operator tree
with per-node cardinality and cost estimates — for inspecting what the
certified planner chose and why.

``explain`` is **total over** :class:`~repro.core.ast.Query`: every
constructor the front end can produce renders, aggregate subqueries
(GROUP BY / HAVING / scalar aggregates desugar to queries *inside*
projections and predicates, per paper Sec. 4.2) are rendered as indented
``Aggregate`` sub-plans with their own estimates, long projection /
predicate labels are elided, and an unknown node degrades to an
``Opaque`` line instead of raising.  :func:`explain_result` additionally
renders the planner's winning rule chain and exploration counters next
to the cost tree.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Iterator, List, Optional, Tuple

from ..core import ast
from ..sql.pretty import predicate_to_str, projection_to_str
from .cost import Estimate, TableStats, estimate
from .extract import PLAN_COUNT_LIMIT

#: Rendered label budget before elision — keeps one plan node on one line
#: even when a projection embeds a whole desugared GROUP BY subquery.
_LABEL_WIDTH = 60


def explain(query: ast.Query, stats: TableStats) -> str:
    """A multi-line EXPLAIN rendering of the plan."""
    lines: List[str] = []
    _explain(query, stats, 0, lines)
    return "\n".join(lines)


def explain_result(result, stats: TableStats) -> str:
    """EXPLAIN for a :class:`~repro.optimizer.planner.PlanningResult`:
    the winning rule chain and search counters, then the cost tree of
    the chosen plan."""
    chain = " → ".join(result.applied_rules) if result.applied_rules \
        else "(none — original plan kept)"
    certified = {True: "VERIFIED", False: "FAILED",
                 None: "skipped"}[result.certified]
    if result.strategy == "saturation":
        sat = result.saturation
        clamped = result.plans_explored >= PLAN_COUNT_LIMIT
        explored = (f"{'≥' if clamped else ''}{result.plans_explored}"
                    f" distinct plans in {sat.nodes} e-nodes / "
                    f"{sat.classes} e-classes"
                    f"{' (saturated)' if sat.saturated else ''}")
    else:
        explored = f"{result.plans_explored} plans enumerated"
    lines = [
        f"strategy           : {result.strategy}",
        f"plans explored     : {explored}",
        f"rewrite chain      : {chain}",
        f"original plan cost : {result.original_cost:.1f}",
        f"optimized plan cost: {result.best_cost:.1f}",
        f"prover certificate : {certified}",
        "",
        explain(result.best_plan, stats),
    ]
    return "\n".join(lines)


def _clip(text: str) -> str:
    if len(text) <= _LABEL_WIDTH:
        return text
    return text[:_LABEL_WIDTH - 1] + "…"


def _safe_estimate(query: ast.Query, stats: TableStats) -> Optional[Estimate]:
    try:
        return estimate(query, stats)
    except TypeError:
        return None


def _node(label: str, est: Optional[Estimate], depth: int,
          lines: List[str]) -> None:
    indent = "  " * depth
    if est is None:
        lines.append(f"{indent}{label}  [rows≈? cost≈?]")
    else:
        lines.append(f"{indent}{label}  "
                     f"[rows≈{est.cardinality:.1f} cost≈{est.cost:.1f}]")


def _aggregate_subqueries(value: object) -> Iterator[Tuple[str, ast.Query]]:
    """Aggregate subqueries nested in a projection/predicate/expression.

    GROUP BY, HAVING, and scalar aggregates compile to :class:`ast.Agg`
    nodes whose operand is a full query; surfacing them keeps EXPLAIN
    informative (and total) on every shape the SQL front end emits.
    """
    if isinstance(value, ast.Agg):
        yield value.name, value.query
        return  # the operand renders as its own sub-plan
    if isinstance(value, (ast.Predicate, ast.Expression, ast.Projection)):
        for field_ in dataclass_fields(value):
            child = getattr(value, field_.name)
            children = child if isinstance(child, tuple) else (child,)
            for item in children:
                yield from _aggregate_subqueries(item)


def _explain_label_aggs(value: object, stats: TableStats, depth: int,
                        lines: List[str]) -> None:
    for name, subquery in _aggregate_subqueries(value):
        _node(f"Aggregate {name}", _safe_estimate(subquery, stats), depth,
              lines)
        _explain(subquery, stats, depth + 1, lines)


def _explain(query: ast.Query, stats: TableStats, depth: int,
             lines: List[str]) -> None:
    est = _safe_estimate(query, stats)
    if isinstance(query, ast.Table):
        _node(f"Scan {query.name}", est, depth, lines)
        return
    if isinstance(query, ast.Select):
        _node(f"Project {_clip(projection_to_str(query.projection))}", est,
              depth, lines)
        _explain_label_aggs(query.projection, stats, depth + 1, lines)
        _explain(query.query, stats, depth + 1, lines)
        return
    if isinstance(query, ast.Product):
        _node("CrossJoin", est, depth, lines)
        _explain(query.left, stats, depth + 1, lines)
        _explain(query.right, stats, depth + 1, lines)
        return
    if isinstance(query, ast.Where):
        _node(f"Filter {_clip(predicate_to_str(query.predicate))}", est,
              depth, lines)
        _explain_label_aggs(query.predicate, stats, depth + 1, lines)
        _explain(query.query, stats, depth + 1, lines)
        return
    if isinstance(query, ast.UnionAll):
        _node("UnionAll", est, depth, lines)
        _explain(query.left, stats, depth + 1, lines)
        _explain(query.right, stats, depth + 1, lines)
        return
    if isinstance(query, ast.Except):
        _node("Except", est, depth, lines)
        _explain(query.left, stats, depth + 1, lines)
        _explain(query.right, stats, depth + 1, lines)
        return
    if isinstance(query, ast.Distinct):
        _node("Distinct", est, depth, lines)
        _explain(query.query, stats, depth + 1, lines)
        return
    # Totality: an unknown Query subclass (a future operator, a test
    # double) renders as an opaque leaf instead of crashing EXPLAIN.
    _node(f"Opaque {type(query).__name__}", est, depth, lines)


__all__ = ["explain", "explain_result"]
