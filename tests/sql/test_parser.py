"""Parser tests: named AST construction and error reporting."""

import pytest

from repro.sql import nast
from repro.sql.parser import ParseError, parse


class TestSelect:
    def test_select_star(self):
        q = parse("SELECT * FROM R")
        assert isinstance(q, nast.NSelect)
        assert q.items == ()
        assert q.from_items[0].source == "R"
        assert q.from_items[0].alias == "R"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM R").distinct
        assert not parse("SELECT a FROM R").distinct

    def test_select_items_with_aliases(self):
        q = parse("SELECT a AS x, R.b FROM R")
        assert q.items[0].alias == "x"
        assert q.items[1].expr == nast.NColumn("R", "b")

    def test_from_aliases(self):
        q = parse("SELECT * FROM R AS x, R y, S")
        assert [f.alias for f in q.from_items] == ["x", "y", "S"]

    def test_subquery_in_from(self):
        q = parse("SELECT * FROM (SELECT a FROM R) AS v")
        assert isinstance(q.from_items[0].source, nast.NSelect)
        assert q.from_items[0].alias == "v"

    def test_group_by(self):
        q = parse("SELECT a, SUM(b) FROM R GROUP BY a")
        assert q.group_by == nast.NColumn(None, "a")
        assert isinstance(q.items[1].expr, nast.NAggCall)


class TestPredicates:
    def test_comparisons(self):
        q = parse("SELECT * FROM R WHERE a = 1 AND b < 2 OR NOT c >= 3")
        # OR binds loosest: (a=1 AND b<2) OR (NOT c>=3)
        assert isinstance(q.where, nast.NOr)
        assert isinstance(q.where.left, nast.NAnd)
        assert isinstance(q.where.right, nast.NNot)

    def test_parenthesized_predicate(self):
        q = parse("SELECT * FROM R WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(q.where, nast.NAnd)
        assert isinstance(q.where.left, nast.NOr)

    def test_bool_literals(self):
        q = parse("SELECT * FROM R WHERE TRUE AND FALSE")
        assert q.where == nast.NAnd(nast.NBoolLit(True),
                                    nast.NBoolLit(False))

    def test_exists(self):
        q = parse("SELECT * FROM R WHERE EXISTS (SELECT * FROM S)")
        assert isinstance(q.where, nast.NExists)

    def test_string_literal(self):
        q = parse("SELECT * FROM R WHERE name = 'bob'")
        assert q.where.right == nast.NLiteral("bob")


class TestCompound:
    def test_union_all(self):
        q = parse("SELECT a FROM R UNION ALL SELECT a FROM S")
        assert isinstance(q, nast.NUnionAll)

    def test_except(self):
        q = parse("SELECT a FROM R EXCEPT SELECT a FROM S")
        assert isinstance(q, nast.NExcept)

    def test_left_associative_chain(self):
        q = parse("SELECT a FROM R UNION ALL SELECT a FROM S "
                  "EXCEPT SELECT a FROM T")
        assert isinstance(q, nast.NExcept)
        assert isinstance(q.left, nast.NUnionAll)

    def test_parenthesized_compound(self):
        q = parse("SELECT a FROM R EXCEPT "
                  "(SELECT a FROM S UNION ALL SELECT a FROM T)")
        assert isinstance(q, nast.NExcept)
        assert isinstance(q.right, nast.NUnionAll)


class TestExpressions:
    def test_function_call(self):
        q = parse("SELECT add(a, 1) FROM R")
        expr = q.items[0].expr
        assert isinstance(expr, nast.NFuncCall)
        assert expr.name == "add"
        assert len(expr.args) == 2

    def test_aggregate_call(self):
        q = parse("SELECT SUM(sal) FROM R GROUP BY d")
        assert isinstance(q.items[0].expr, nast.NAggCall)

    def test_aggregate_arity_error(self):
        with pytest.raises(ParseError):
            parse("SELECT SUM(a, b) FROM R")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT",
        "SELECT FROM R",
        "SELECT * FROM",
        "SELECT * FROM R WHERE",
        "SELECT * FROM (SELECT a FROM R)",     # subquery needs AS alias
        "SELECT * FROM R UNION SELECT * FROM S",  # UNION without ALL
        "SELECT * FROM R trailing nonsense extra",
        "SELECT * FROM R WHERE a",
    ])
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestGeneralizedGrammar:
    """PR 4 surface forms: arithmetic, HAVING, optional AS."""

    def test_arithmetic_precedence(self):
        q = parse("SELECT a + b * 2 FROM R")
        expr = q.items[0].expr
        assert isinstance(expr, nast.NBinOp) and expr.op == "+"
        assert isinstance(expr.right, nast.NBinOp) and expr.right.op == "*"

    def test_arithmetic_left_associativity(self):
        q = parse("SELECT a - b - 1 FROM R")
        expr = q.items[0].expr
        assert expr.op == "-" and isinstance(expr.left, nast.NBinOp)

    def test_arithmetic_in_comparison(self):
        q = parse("SELECT a FROM R WHERE a + 1 = b / 2")
        pred = q.where
        assert isinstance(pred.left, nast.NBinOp)
        assert isinstance(pred.right, nast.NBinOp)

    def test_parenthesized_expression_comparison(self):
        q = parse("SELECT a FROM R WHERE (a + 1) * 2 = b")
        assert isinstance(q.where.left, nast.NBinOp)
        assert q.where.left.op == "*"

    def test_having_parses(self):
        q = parse("SELECT k, SUM(b) FROM R GROUP BY k HAVING SUM(b) > 1")
        assert isinstance(q.having, nast.NComparison)

    def test_having_without_group_by_parses(self):
        # Resolution rejects it with a clear error; the *parser* accepts
        # it (regression: this used to die as "unexpected trailing
        # input").
        q = parse("SELECT a FROM R HAVING a = 1")
        assert q.group_by is None and q.having is not None

    def test_derived_table_alias_without_as(self):
        q = parse("SELECT DISTINCT a FROM (SELECT a FROM R) t")
        assert q.from_items[0].alias == "t"

    def test_derived_table_still_requires_alias(self):
        with pytest.raises(ParseError, match="requires an alias"):
            parse("SELECT a FROM (SELECT a FROM R)")

    def test_aggregate_over_subquery(self):
        q = parse("SELECT COUNT((SELECT a FROM R)) FROM R")
        assert isinstance(q.items[0].expr, nast.NAggQuery)

    def test_count_of_parenthesized_expression(self):
        q = parse("SELECT COUNT((a)) FROM R")
        call = q.items[0].expr
        assert isinstance(call, nast.NAggCall)
        assert call.arg == nast.NColumn(table=None, column="a")

    def test_aggregate_of_expression(self):
        q = parse("SELECT SUM(a + b) FROM R GROUP BY k")
        assert isinstance(q.items[0].expr.arg, nast.NBinOp)
