"""Hierarchical spans: the correlation half of the observability layer.

A *span* is one timed region of work with a name, free-form attributes,
and children — the structure ad-hoc ``time.perf_counter()`` bookkeeping
cannot give: tier timings that nest under their check, saturation
iterations that nest under their optimize call, batch jobs that nest
under their batch.  Usage::

    from repro.obs import span, traced

    with span("pipeline.prover", pair=fp) as sp:
        ...                      # sp.duration afterwards, children inside

    @traced("optimizer.extract")
    def extract_best(...): ...

Spans form per-thread stacks (``threading.local``), so concurrent
threads interleave without corrupting each other's trees, and clocks are
monotonic (``time.perf_counter``) so a span can never have negative
duration.  Opening and closing a span is cheap — two clock reads and an
append — because instrumented hot paths (every pipeline check) run it
unconditionally: the *span tree* is what populates ``Verdict.timings``,
whether or not anyone is exporting.

Exporting is the :class:`Tracer`'s job.  When enabled it retains
completed *root* spans (bounded, oldest dropped) and renders them two
ways:

* :meth:`Tracer.chrome_trace` / :meth:`Tracer.write_chrome` — the Chrome
  trace-event JSON format (``{"traceEvents": [{"ph": "X", ...}]}``),
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev,
* :meth:`Tracer.render` — a human-readable indented tree with
  durations, for terminals and test failures.

The module-level :data:`TRACER` is what the CLI's ``--trace-out`` flag
drives (via :func:`trace_to_file`).  Spans are process-local: the batch
service's worker processes ship metrics snapshots home, not spans, so a
parent-process trace shows dispatch/collect timing for remote jobs and
full tier detail for inline ones.

At DEBUG level (``--log-level DEBUG``) every span open/close is also
logged through ``repro.trace`` — guarded by ``isEnabledFor`` so the
default configuration pays one boolean check.
"""

from __future__ import annotations

import functools
import json
import logging
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .logs import get_logger

__all__ = [
    "Span",
    "TRACER",
    "Tracer",
    "current_span",
    "span",
    "trace_to_file",
    "traced",
]

_log = get_logger("trace")

#: Common time origin for every span in the process, so Chrome-trace
#: timestamps from different threads land on one comparable axis.
_EPOCH = time.perf_counter()

_local = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class Span:
    """One timed, named, attributed region of work."""

    __slots__ = ("name", "attrs", "start", "end", "children", "error",
                 "thread_id", "thread_name")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        self.error: Optional[str] = None
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        self.end: Optional[float] = None
        self.start = time.perf_counter()

    @property
    def duration(self) -> float:
        """Seconds from open to close (to *now* while still open)."""
        return (time.perf_counter() if self.end is None
                else self.end) - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.3f} ms" if self.closed else "open"
        return f"Span({self.name!r}, {state}, {len(self.children)} child(ren))"


class span:
    """Context manager opening a :class:`Span` under the current one.

    The span is timed and linked into its parent unconditionally (the
    pipeline reads tier durations off these objects); completed *root*
    spans are additionally handed to :data:`TRACER` when it is enabled.
    Exceptions close the span, record ``error``, and propagate.
    """

    __slots__ = ("_name", "_attrs", "_span")

    def __init__(self, _name: str, **attrs: Any) -> None:
        self._name = _name
        self._attrs = attrs

    def __enter__(self) -> Span:
        sp = self._span = Span(self._name, self._attrs)
        stack = _stack()
        if stack:
            stack[-1].children.append(sp)
        stack.append(sp)
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug("open  %s%s", "  " * (len(stack) - 1), sp.name)
        return sp

    def __exit__(self, exc_type, exc, tb) -> bool:
        sp = self._span
        sp.end = time.perf_counter()
        if exc is not None:
            sp.error = f"{exc_type.__name__}: {exc}"
        stack = _stack()
        # The span is closed even if the stack was corrupted by a caller
        # leaking __enter__/__exit__ pairs; only well-nested pops record.
        if stack and stack[-1] is sp:
            stack.pop()
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug("close %s%s (%.3f ms%s)", "  " * len(stack), sp.name,
                       sp.duration * 1e3,
                       f", error={sp.error}" if sp.error else "")
        if not stack:
            TRACER.record(sp)
        return False


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def traced(name=None, **attrs: Any):
    """Decorator form of :func:`span`.

    ``@traced`` uses the function's qualified name; ``@traced("label",
    key=value)`` sets the span name and static attributes.
    """
    if callable(name):  # bare @traced
        return traced(None)(name)

    def decorate(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(label, **attrs):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


# ---------------------------------------------------------------------------
# The tracer: retention + exporters
# ---------------------------------------------------------------------------

def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class Tracer:
    """Retains completed root spans and exports them.

    Disabled by default: instrumented code pays for span objects either
    way (they feed ``Verdict.timings``), but nothing is *retained* until
    a consumer enables the tracer.  Retention is bounded (oldest roots
    dropped) so a long-lived service with tracing left on cannot grow
    without limit.
    """

    def __init__(self, max_roots: int = 100_000) -> None:
        self._roots: "deque[Span]" = deque(maxlen=max_roots)
        self.enabled = False

    # -- collection ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._roots.clear()

    def record(self, root: Span) -> None:
        """Called by :class:`span` for every completed root span."""
        if self.enabled:
            self._roots.append(root)

    @property
    def roots(self) -> List[Span]:
        return list(self._roots)

    def __len__(self) -> int:
        return len(self._roots)

    # -- Chrome trace-event exporter ----------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """Complete ``"X"`` (duration) events, one per span."""
        pid = os.getpid()
        events = []
        for root in self._roots:
            for sp in root.walk():
                if not sp.closed:
                    continue
                args = {k: _json_safe(v) for k, v in sp.attrs.items()}
                if sp.error:
                    args["error"] = sp.error
                events.append({
                    "name": sp.name,
                    "cat": sp.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": (sp.start - _EPOCH) * 1e6,
                    "dur": sp.duration * 1e6,
                    "pid": pid,
                    "tid": sp.thread_id,
                    "args": args,
                })
        events.sort(key=lambda e: e["ts"])
        return events

    def chrome_trace(self) -> Dict[str, Any]:
        """The full Chrome trace-event JSON object (Perfetto-loadable)."""
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.trace"},
        }

    def write_chrome(self, path: str) -> str:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
        return path

    # -- human-readable tree ------------------------------------------------

    def render(self, max_roots: Optional[int] = None) -> str:
        """Indented span tree with durations (newest roots last)."""
        roots = self.roots
        if max_roots is not None:
            roots = roots[-max_roots:]
        lines: List[str] = []
        for root in roots:
            self._render_span(root, 0, lines)
        return "\n".join(lines)

    def _render_span(self, sp: Span, depth: int, lines: List[str]) -> None:
        attrs = " ".join(f"{k}={_json_safe(v)}" for k, v in sp.attrs.items())
        error = f"  !{sp.error}" if sp.error else ""
        lines.append(f"{'  ' * depth}{sp.name:<28} "
                     f"{sp.duration * 1e3:9.3f} ms"
                     f"{'  ' + attrs if attrs else ''}{error}")
        for child in sp.children:
            self._render_span(child, depth + 1, lines)


#: The process-wide tracer (what ``--trace-out`` enables and exports).
TRACER = Tracer()


@contextmanager
def trace_to_file(path: Optional[str]):
    """Enable tracing for a block and export to ``path`` on exit.

    ``path=None`` is a no-op passthrough, so call sites can thread an
    optional ``--trace-out`` argument straight in.  Pre-existing trace
    state is cleared: the file covers exactly the block.
    """
    if path is None:
        yield None
        return
    was_enabled = TRACER.enabled
    TRACER.clear()
    TRACER.enable()
    try:
        yield TRACER
    finally:
        TRACER.enabled = was_enabled
        TRACER.write_chrome(path)
        TRACER.clear()
