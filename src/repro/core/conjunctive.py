"""The automated decision procedure for conjunctive queries (paper Sec. 5.2).

A conjunctive query (CQ) has the shape::

    DISTINCT SELECT p FROM q₁, ..., qₙ WHERE b

where every ``qᵢ`` is a base table and ``b`` is a conjunction of equalities
between attribute projections.  Set-semantics equivalence of CQs is
decidable (NP-complete; Chandra & Merlin 1977 — paper Figure 9), and the
paper implements the classical procedure in Ltac: turn both sides into
truncated existentials, then search for containment mappings in both
directions.

This module packages that procedure: it recognizes the CQ fragment,
decides equivalence *completely* on it, and exposes the discovered
homomorphisms (the arrows of the paper's Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ReproError
from . import ast
from .denote import denote_closed
from .equivalence import (
    Hypotheses,
    NO_HYPOTHESES,
    align_denotations,
    implication_witness,
)
from .normalize import ASquash, NProduct, NSum, normalize
from .schema import EMPTY, Schema
from .uninomial import TVar, Term


# ---------------------------------------------------------------------------
# Fragment recognition
# ---------------------------------------------------------------------------

def is_conjunctive_query(query: ast.Query) -> bool:
    """Syntactic membership test for the decidable CQ fragment."""
    if not isinstance(query, ast.Distinct):
        return False
    return _is_cq_body(query.query)


def _is_cq_body(query: ast.Query) -> bool:
    if isinstance(query, ast.Select):
        return _is_projection_simple(query.projection) \
            and _is_cq_from(query.query)
    return False


def _is_cq_from(query: ast.Query) -> bool:
    if isinstance(query, ast.Where):
        return _is_cq_from(query.query) \
            and _is_conjunction_of_equalities(query.predicate)
    return _is_table_product(query)


def _is_table_product(query: ast.Query) -> bool:
    if isinstance(query, ast.Table):
        return True
    if isinstance(query, ast.Product):
        return _is_table_product(query.left) and _is_table_product(query.right)
    return False


def _is_conjunction_of_equalities(pred: ast.Predicate) -> bool:
    if isinstance(pred, ast.PredAnd):
        return _is_conjunction_of_equalities(pred.left) \
            and _is_conjunction_of_equalities(pred.right)
    if isinstance(pred, ast.PredEq):
        return _is_simple_expression(pred.left) \
            and _is_simple_expression(pred.right)
    return isinstance(pred, ast.PredTrue)


def _is_simple_expression(expr: ast.Expression) -> bool:
    if isinstance(expr, ast.P2E):
        return _is_projection_simple(expr.projection)
    return isinstance(expr, ast.Const)


def _is_projection_simple(proj: ast.Projection) -> bool:
    if isinstance(proj, (ast.Star, ast.LeftP, ast.RightP, ast.EmptyP,
                         ast.PVar)):
        return True
    if isinstance(proj, ast.Compose):
        return _is_projection_simple(proj.first) \
            and _is_projection_simple(proj.second)
    if isinstance(proj, ast.Duplicate):
        return _is_projection_simple(proj.left) \
            and _is_projection_simple(proj.right)
    return False


# ---------------------------------------------------------------------------
# The decision procedure
# ---------------------------------------------------------------------------

class NotConjunctive(ReproError):
    """Raised when :func:`decide_cq` is applied outside the CQ fragment."""


@dataclass
class Homomorphism:
    """A containment mapping: instantiation of one side's bound variables."""

    direction: str
    assignment: Dict[TVar, Term]

    def render(self) -> List[str]:
        """Human-readable mapping lines (the arrows of Figure 10)."""
        return [f"{var} ↦ {term}"
                for var, term in sorted(self.assignment.items(),
                                        key=lambda kv: kv[0].name)]


@dataclass
class CQDecision:
    """Result of the CQ decision procedure."""

    equivalent: bool
    forward: Optional[Homomorphism]
    backward: Optional[Homomorphism]
    lhs_normal: NSum
    rhs_normal: NSum


def decide_cq(q1: ast.Query, q2: ast.Query,
              ctx_schema: Schema = EMPTY,
              hyps: Hypotheses = NO_HYPOTHESES,
              require_fragment: bool = True,
              normals: Optional[tuple] = None) -> CQDecision:
    """Decide set-semantics equivalence of two conjunctive queries.

    The procedure is *complete* on the CQ fragment: it answers
    ``equivalent=True`` iff the queries are equivalent on all instances.
    With ``require_fragment=False`` the same search runs on arbitrary
    queries, where a positive answer is still sound.  Callers that have
    already denoted and normalized the pair (the verification pipeline)
    may pass the two aligned normal forms as ``normals`` to skip that
    work.

    Raises:
        NotConjunctive: if ``require_fragment`` and either query is not a CQ.
    """
    if require_fragment:
        for q in (q1, q2):
            if not is_conjunctive_query(q):
                raise NotConjunctive(f"not a conjunctive query: {q!r}")
    if normals is not None:
        n1, n2 = normals
    else:
        d1 = denote_closed(q1, ctx_schema)
        d2 = denote_closed(q2, ctx_schema)
        lhs, rhs = align_denotations(d1, d2)
        n1 = normalize(lhs)
        n2 = normalize(rhs)
    e1 = _squash_content(n1)
    e2 = _squash_content(n2)
    if e1 is None or e2 is None:
        raise NotConjunctive(
            "denotation did not normalize to a truncated existential")
    forward = _directional_witness(e1, e2, "lhs → rhs", hyps)
    backward = _directional_witness(e2, e1, "rhs → lhs", hyps)
    return CQDecision(
        equivalent=forward is not None and backward is not None,
        forward=forward,
        backward=backward,
        lhs_normal=n1,
        rhs_normal=n2,
    )


def cq_equivalent(q1: ast.Query, q2: ast.Query,
                  ctx_schema: Schema = EMPTY) -> bool:
    """Boolean shorthand for :func:`decide_cq`."""
    return decide_cq(q1, q2, ctx_schema).equivalent


def _squash_content(n: NSum) -> Optional[NSum]:
    """Extract E from a normal form of shape ``‖E‖`` (one squash clause)."""
    if len(n.products) != 1:
        return None
    product = n.products[0]
    if product.vars:
        return None
    squashes = [f for f in product.factors if isinstance(f, ASquash)]
    others = [f for f in product.factors if not isinstance(f, ASquash)]
    if len(squashes) == 1 and not others:
        return squashes[0].inner
    # Fully propositional clause (e.g. after total point elimination):
    # treat the clause itself as the existential content.
    return NSum((product,))


def _directional_witness(source: NSum, target: NSum, direction: str,
                         hyps: Hypotheses) -> Optional[Homomorphism]:
    """All disjuncts of ``source`` must map into ``target``."""
    combined: Dict[TVar, Term] = {}
    for p in source.products:
        found = implication_witness(_open_product(p), target, hyps)
        if found is None:
            return None
        _, assignment = found
        combined.update(assignment)
    return Homomorphism(direction=direction, assignment=combined)


def _open_product(p: NProduct) -> NProduct:
    """View a clause's binders as free (skolemized) hypothesis variables."""
    return NProduct((), p.factors)
