"""Abstract syntax of HoTTSQL (paper Figure 5).

Four syntactic categories:

* **queries** — take relations to a relation,
* **predicates** — evaluated against a context tuple, return a proposition,
* **expressions** — evaluated against a context tuple, return a value,
* **projections** — tuple-to-tuple functions (attributes are projections
  onto ``Leaf`` schemas).

Rewrite rules are *generic*: they quantify over relations, predicates,
expressions, and attributes.  Metavariables (:class:`Table` with a schema
variable, :class:`PredVar`, :class:`ExprVar`, :class:`PVar`) carry explicit
schema annotations; the explicit casts ``CASTPRED`` / ``CASTEXPR`` re-scope a
metavariable into a larger context exactly as in paper Sec. 3.3.

All nodes are frozen dataclasses — hashable, comparable, and safe to share
— and, like the UniNomial kernel, **hash-consed** through
:func:`repro.core.intern.interned`: structurally equal constructions
return the *same* object, so structural equality coincides with pointer
equality on canonical nodes and ``__hash__`` is computed once per node.
The equality-saturation optimizer keys its e-graph hashcons and its
term→e-class memo on these canonical identities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple as PyTuple

from .intern import interned
from .schema import SQLType, Schema


class Query:
    """Base class for query nodes (relation-valued)."""

    __slots__ = ()


class Predicate:
    """Base class for predicate nodes (proposition-valued)."""

    __slots__ = ()


class Expression:
    """Base class for scalar expression nodes (value-valued)."""

    __slots__ = ()


class Projection:
    """Base class for projection nodes (tuple-to-tuple functions)."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

@interned
@dataclass(frozen=True)
class Table(Query):
    """A base relation — either a concrete table or a relation metavariable.

    The denotation of a table does not depend on the query context, matching
    paper Figure 7 (``λ g t. ⟦table⟧ t``).  In a rewrite rule, distinct
    names denote independently quantified relations.
    """

    name: str
    schema: Schema


@interned
@dataclass(frozen=True)
class Select(Query):
    """``SELECT p q`` — apply projection ``p`` to each tuple of ``q``.

    The projection runs in the context extended with ``q``'s schema, so it
    can mention both outer context attributes and ``q``'s attributes.
    """

    projection: Projection
    query: Query


@interned
@dataclass(frozen=True)
class Product(Query):
    """``FROM q1, q2`` — cross product; output schema ``node σ1 σ2``."""

    left: Query
    right: Query


@interned
@dataclass(frozen=True)
class Where(Query):
    """``q WHERE b`` — filter by predicate ``b``.

    ``b`` is evaluated in context ``node Γ σ_q`` (paper Figure 7): it sees
    the outer context on the left and the current tuple on the right.
    """

    query: Query
    predicate: Predicate


@interned
@dataclass(frozen=True)
class UnionAll(Query):
    """``q1 UNION ALL q2`` — bag union (pointwise ``+``)."""

    left: Query
    right: Query


@interned
@dataclass(frozen=True)
class Except(Query):
    """``q1 EXCEPT q2`` — tuples of q1 that do not occur in q2 at all."""

    left: Query
    right: Query


@interned
@dataclass(frozen=True)
class Distinct(Query):
    """``DISTINCT q`` — duplicate elimination (``‖·‖``)."""

    query: Query


def from_clauses(*queries: Query) -> Query:
    """``FROM q1, ..., qn`` as a right-nested chain of binary products."""
    if not queries:
        raise ValueError("FROM requires at least one query")
    result = queries[-1]
    for q in reversed(queries[:-1]):
        result = Product(q, result)
    return result


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

@interned
@dataclass(frozen=True)
class PredEq(Predicate):
    """``e1 = e2`` — equality of two scalar expressions."""

    left: Expression
    right: Expression


@interned
@dataclass(frozen=True)
class PredAnd(Predicate):
    """``b1 AND b2`` (product of propositions)."""

    left: Predicate
    right: Predicate


@interned
@dataclass(frozen=True)
class PredOr(Predicate):
    """``b1 OR b2`` (squashed sum of propositions)."""

    left: Predicate
    right: Predicate


@interned
@dataclass(frozen=True)
class PredNot(Predicate):
    """``NOT b`` (``b → 0``)."""

    operand: Predicate


@interned
@dataclass(frozen=True)
class PredTrue(Predicate):
    """The always-true predicate."""


@interned
@dataclass(frozen=True)
class PredFalse(Predicate):
    """The always-false predicate."""


@interned
@dataclass(frozen=True)
class Exists(Predicate):
    """``EXISTS q`` — the (squashed) existence of a tuple in ``q``.

    ``q`` is evaluated in the *current* predicate context, which is how
    correlated subqueries see outer tuples (paper Figure 6).
    """

    query: Query


@interned
@dataclass(frozen=True)
class CastPred(Predicate):
    """``CASTPRED p b`` — evaluate ``b`` in the context reached by ``p``.

    Explicit re-scoping of a predicate metavariable (paper Sec. 3.3):
    composition of the projection ``p`` with ``b``.
    """

    projection: Projection
    predicate: Predicate


@interned
@dataclass(frozen=True)
class PredVar(Predicate):
    """A predicate metavariable ranging over all predicates on ``schema``."""

    name: str
    schema: Schema


@interned
@dataclass(frozen=True)
class PredFunc(Predicate):
    """An uninterpreted predicate symbol applied to scalar expressions.

    Extends the paper's grammar with named comparisons (``lt``, ``gt``, ...)
    so that concrete examples such as ``E.age < 30`` are executable; the
    prover treats these as opaque propositions, exactly like ``PredVar``.
    """

    name: str
    args: PyTuple[Expression, ...]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@interned
@dataclass(frozen=True)
class P2E(Expression):
    """Convert a projection onto a leaf into a scalar expression."""

    projection: Projection
    ty: SQLType


@interned
@dataclass(frozen=True)
class Const(Expression):
    """A literal constant (a nullary uninterpreted function in the paper)."""

    value: object
    ty: SQLType


@interned
@dataclass(frozen=True)
class Func(Expression):
    """An uninterpreted scalar function ``f(e1, ..., en)``."""

    name: str
    args: PyTuple[Expression, ...]
    ty: SQLType


@interned
@dataclass(frozen=True)
class Agg(Expression):
    """``agg(q)`` — an aggregate applied to a single-column query.

    ``q`` must have schema ``leaf τ``; the aggregate folds the *bag* the
    query denotes.  GROUP BY is desugared into correlated subqueries feeding
    aggregates (paper Sec. 4.2).
    """

    name: str
    query: Query
    ty: SQLType


@interned
@dataclass(frozen=True)
class CastExpr(Expression):
    """``CASTEXPR p e`` — evaluate ``e`` in the context reached by ``p``."""

    projection: Projection
    expression: Expression


@interned
@dataclass(frozen=True)
class ExprVar(Expression):
    """An expression metavariable over ``schema``, of result type ``ty``."""

    name: str
    schema: Schema
    ty: SQLType


# ---------------------------------------------------------------------------
# Projections
# ---------------------------------------------------------------------------

@interned
@dataclass(frozen=True)
class Star(Projection):
    """``*`` — the identity projection."""


@interned
@dataclass(frozen=True)
class LeftP(Projection):
    """``Left`` — project to the left subtree of a ``node`` schema."""


@interned
@dataclass(frozen=True)
class RightP(Projection):
    """``Right`` — project to the right subtree of a ``node`` schema."""


@interned
@dataclass(frozen=True)
class EmptyP(Projection):
    """``Empty`` — project every tuple to the unit tuple."""


@interned
@dataclass(frozen=True)
class Compose(Projection):
    """``p1 . p2`` — apply ``p1`` first, then ``p2``."""

    first: Projection
    second: Projection


@interned
@dataclass(frozen=True)
class Duplicate(Projection):
    """``p1 , p2`` — apply both to the input and pair the results."""

    left: Projection
    right: Projection


@interned
@dataclass(frozen=True)
class E2P(Projection):
    """Convert a scalar expression into a single-attribute projection."""

    expression: Expression
    ty: SQLType


@interned
@dataclass(frozen=True)
class PVar(Projection):
    """A projection metavariable: "some attribute path" of a generic schema.

    ``source`` is the schema it consumes, ``target`` the schema it produces
    (``Leaf τ`` when the metavariable stands for a single attribute).
    """

    name: str
    source: Schema
    target: Schema


# Convenience constructors ---------------------------------------------------

#: Shared projection atoms.
STAR = Star()
LEFT = LeftP()
RIGHT = RightP()
EMPTYP = EmptyP()


def path(*steps: Projection) -> Projection:
    """Compose projection steps left-to-right: ``path(LEFT, RIGHT)`` = Left.Right."""
    if not steps:
        return STAR
    result = steps[0]
    for step in steps[1:]:
        result = Compose(result, step)
    return result


def proj_tuple(*projs: Projection) -> Projection:
    """Combine projections with ``,`` (right-nested)."""
    if not projs:
        raise ValueError("need at least one projection")
    result = projs[-1]
    for p in reversed(projs[:-1]):
        result = Duplicate(p, result)
    return result


def attr(p: Projection, ty: SQLType) -> Expression:
    """Shorthand for ``P2E`` — read an attribute as a scalar expression."""
    return P2E(p, ty)


def eq(e1: Expression, e2: Expression) -> Predicate:
    """Shorthand for the equality predicate."""
    return PredEq(e1, e2)


def and_(*preds: Predicate) -> Predicate:
    """Conjunction of one or more predicates (right-nested)."""
    if not preds:
        return PredTrue()
    result = preds[-1]
    for p in reversed(preds[:-1]):
        result = PredAnd(p, result)
    return result


def or_(*preds: Predicate) -> Predicate:
    """Disjunction of one or more predicates (right-nested)."""
    if not preds:
        return PredFalse()
    result = preds[-1]
    for p in reversed(preds[:-1]):
        result = PredOr(p, result)
    return result
