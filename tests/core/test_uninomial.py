"""UniNomial term algebra: smart constructors, substitution, alpha keys."""

import pytest

from repro.core.schema import EMPTY, INT, Leaf, Node
from repro.core.uninomial import (
    ONE,
    TAgg,
    TApp,
    TConst,
    TFst,
    TPair,
    TSnd,
    TUnit,
    TVar,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UPred,
    URel,
    USum,
    ZERO,
    fresh_var,
    is_prop,
    subst_term,
    subst_uterm,
    term_free_vars,
    tfst,
    tpair,
    tsnd,
    uadd,
    ueq,
    umul,
    umul_all,
    uneg,
    usquash,
    usum,
    uterm_free_vars,
    uterm_size,
)

S2 = Node(Leaf(INT), Leaf(INT))
X = TVar("x", S2)
Y = TVar("y", Leaf(INT))


class TestTermConstructors:
    def test_schema_computation(self):
        assert X.schema == S2
        assert TPair(Y, Y).schema == Node(Leaf(INT), Leaf(INT))
        assert TUnit().schema == EMPTY
        assert TConst(3, INT).schema == Leaf(INT)
        assert TFst(X).schema == Leaf(INT)
        assert TSnd(X).schema == Leaf(INT)

    def test_fst_of_non_node_rejected(self):
        with pytest.raises(TypeError):
            TFst(Y).schema

    def test_beta_reduction(self):
        assert tfst(TPair(Y, X)) == Y
        assert tsnd(TPair(Y, X)) == X
        assert tfst(X) == TFst(X)

    def test_surjective_pairing(self):
        assert tpair(TFst(X), TSnd(X)) == X
        assert tpair(Y, TSnd(X)) == TPair(Y, TSnd(X))

    def test_fresh_vars_distinct(self):
        a = fresh_var(S2)
        b = fresh_var(S2)
        assert a != b


class TestUTermConstructors:
    R = URel("R", X)

    def test_add_units(self):
        assert uadd(ZERO, self.R) == self.R
        assert uadd(self.R, ZERO) == self.R

    def test_mul_units_and_annihilation(self):
        assert umul(ONE, self.R) == self.R
        assert umul(self.R, ONE) == self.R
        assert umul(ZERO, self.R) == ZERO
        assert umul(self.R, ZERO) == ZERO

    def test_squash_laws(self):
        assert usquash(ZERO) == ZERO
        assert usquash(ONE) == ONE
        assert usquash(usquash(self.R)) == usquash(self.R)
        eq = ueq(Y, TConst(1, INT))
        assert usquash(eq) == eq          # props are squash-fixed

    def test_neg_laws(self):
        assert uneg(ZERO) == ONE
        assert uneg(ONE) == ZERO
        # double negation is truncation
        assert uneg(uneg(self.R)) == usquash(self.R)
        # negation sees through truncation
        assert uneg(usquash(self.R)) == UNeg(self.R)

    def test_eq_reflexivity_and_constants(self):
        assert ueq(Y, Y) == ONE
        assert ueq(TConst(1, INT), TConst(1, INT)) == ONE
        assert ueq(TConst(1, INT), TConst(2, INT)) == ZERO
        assert isinstance(ueq(Y, TConst(1, INT)), UEq)

    def test_sum_of_zero(self):
        assert usum(X, ZERO) == ZERO

    def test_umul_all(self):
        assert umul_all([]) == ONE
        assert umul_all([self.R, ONE]) == self.R

    def test_is_prop(self):
        assert is_prop(ueq(Y, TConst(1, INT)))
        assert is_prop(UPred("b", (X,)))
        assert is_prop(umul(UPred("b", (X,)), UPred("c", (X,))))
        assert not is_prop(self.R)
        assert not is_prop(USum(X, self.R))


class TestFreeVarsAndSubstitution:
    def test_term_free_vars(self):
        assert term_free_vars(TPair(X, Y)) == {X, Y}
        assert term_free_vars(TConst(1, INT)) == frozenset()
        assert term_free_vars(TApp("f", (X,), Leaf(INT))) == {X}

    def test_uterm_free_vars_respects_binders(self):
        body = umul(URel("R", X), ueq(Y, TConst(1, INT)))
        assert uterm_free_vars(USum(X, body)) == {Y}

    def test_agg_binds_its_var(self):
        agg = TAgg("SUM", Y, URel("R", TPair(Y, Y)), INT)
        assert term_free_vars(agg) == frozenset()

    def test_subst_term(self):
        t = TPair(TFst(X), Y)
        out = subst_term(t, {Y: TConst(5, INT)})
        assert out == TPair(TFst(X), TConst(5, INT))

    def test_subst_beta_reduces(self):
        t = TFst(X)
        out = subst_term(t, {X: TPair(Y, Y)})
        assert out == Y

    def test_subst_uterm_capture_avoidance(self):
        # Σ x. (x = y) with y := x must not capture.
        body = ueq(TFst(X), Y)
        summed = USum(X, body)
        out = subst_uterm(summed, {Y: TFst(X)})
        assert isinstance(out, USum)
        assert out.var != X                   # binder was renamed
        assert X in uterm_free_vars(out)      # the free x survives

    def test_subst_shadowed_binding_dropped(self):
        summed = USum(X, URel("R", X))
        assert subst_uterm(summed, {X: TPair(Y, Y)}) == summed


class TestSize:
    def test_uterm_size_monotone(self):
        small = URel("R", X)
        big = UMul(small, UAdd(small, small))
        assert uterm_size(big) > uterm_size(small)
        assert uterm_size(ZERO) == 1
