"""Shared building blocks for the rewrite-rule library.

Generic rules quantify over schemas (``SVar``), relations (:class:`Table`
with a variable schema), predicates (``PredVar``), and attributes
(``PVar``).  This module provides:

* the standard schema variables the rule modules share,
* the **θ-semijoin macro** of paper Sec. 5.1.3
  (``A SEMIJOIN B ON θ  :=  A WHERE EXISTS (SELECT * FROM B WHERE θ)``),
* the **GROUP BY desugaring** of paper Sec. 4.2 (grouping as a correlated
  subquery feeding an aggregate),
* concretization helpers used by every rule's random-instance oracle.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Tuple

from ..core import ast
from ..core.schema import EMPTY, INT, Leaf, Node, SVar, Schema
from ..engine.database import Interpretation
from ..engine.random_instances import (
    deterministic_predicate,
    path_projection,
    random_keyed_relation,
    random_relation,
)
from ..semiring.semirings import NAT

# Schema variables shared by rule statements.  Distinct rules may reuse the
# same variable; each rule quantifies over it independently.
SR = SVar("sR")
SS = SVar("sS")
ST = SVar("sT")

#: The concrete schema instantiators use for every schema variable:
#: a two-attribute relation (attributes reachable at paths L and R).
CONCRETE = Node(Leaf(INT), Leaf(INT))

#: The concrete paths attribute metavariables can be instantiated with.
LEAF_PATHS = (("L",), ("R",))


def table(name: str, schema: Schema = SR) -> ast.Table:
    """A relation metavariable."""
    return ast.Table(name, schema)


def where_pred(name: str, schema: Schema) -> ast.PredVar:
    """A predicate metavariable for a top-level ``WHERE`` over ``schema``.

    Its context is ``node empty σ`` — the shape Figure 7 gives to a
    predicate in ``q WHERE b`` when the outer context is empty.
    """
    return ast.PredVar(name, Node(EMPTY, schema))


def const_expr(name: str) -> ast.Expression:
    """A generic constant: an expression metavariable over the empty context.

    Usable in any context by casting down to ``empty`` first — the paper's
    nullary uninterpreted function.
    """
    return ast.CastExpr(ast.EMPTYP, ast.ExprVar(name, EMPTY, INT))


def attr_expr(*steps: ast.Projection) -> ast.Expression:
    """Read an int attribute through a projection path."""
    return ast.P2E(ast.path(*steps), INT)


def semijoin(left: ast.Query, right: ast.Query, theta: ast.PredVar
             ) -> ast.Query:
    """``left SEMIJOIN right ON theta`` (paper Sec. 5.1.3).

    ``theta`` must be a predicate metavariable over ``node σ_left σ_right``;
    the macro inserts the CASTPRED re-scoping the paper requires.
    """
    cast = ast.Duplicate(ast.path(ast.LEFT, ast.RIGHT), ast.RIGHT)
    return ast.Where(
        left,
        ast.Exists(ast.Where(right, ast.CastPred(cast, theta))))


def semijoin_on(left: ast.Query, right: ast.Query,
                pair_predicate: ast.Predicate) -> ast.Query:
    """θ-semijoin with an explicit predicate over ``node σ_left σ_right``."""
    cast = ast.Duplicate(ast.path(ast.LEFT, ast.RIGHT), ast.RIGHT)
    return ast.Where(
        left,
        ast.Exists(ast.Where(right, ast.CastPred(cast, pair_predicate))))


def groupby_agg(source: ast.Query, key: ast.PVar, value: ast.PVar,
                agg_name: str) -> ast.Query:
    """GROUP BY desugared per paper Sec. 4.2.

    ``SELECT k, agg(v) FROM source GROUP BY k`` becomes::

        DISTINCT SELECT (k(t), agg(SELECT v FROM source WHERE k(s) = k(t)))
        FROM source

    ``key`` and ``value`` are attribute metavariables on ``source``'s
    schema.  The output schema is ``node (leaf int) (leaf int)``.
    """
    # Context inside the SELECT projection: node Γ σ; the current source
    # tuple sits at Right.
    key_of_current = ast.path(ast.RIGHT, key)
    # Context inside the correlated subquery's WHERE: node (node Γ σ) σ —
    # the inner tuple at Right, the grouping tuple at Left.Right.
    correlated = ast.Where(
        source,
        ast.PredEq(attr_expr(ast.RIGHT, key),
                   attr_expr(ast.LEFT, ast.RIGHT, key)))
    per_group = ast.Select(ast.path(ast.RIGHT, value), correlated)
    agg = ast.Agg(agg_name, per_group, INT)
    projection = ast.Duplicate(key_of_current, ast.E2P(agg, INT))
    return ast.Distinct(ast.Select(projection, source))


# ---------------------------------------------------------------------------
# Concretization helpers for the oracle
# ---------------------------------------------------------------------------

def standard_interpretation(
        rng: random.Random,
        tables: Tuple[str, ...],
        attrs: Tuple[str, ...] = (),
        preds: Tuple[str, ...] = (),
        consts: Tuple[str, ...] = (),
        keyed: Dict[str, str] | None = None,
        max_rows: int = 5) -> Interpretation:
    """A random interpretation over the standard concrete schema.

    Args:
        rng: the PRNG driving all choices.
        tables: relation metavariables to instantiate.
        attrs: attribute (``PVar``) metavariables → random leaf paths.
        preds: predicate (``PredVar``) metavariables → deterministic
            pseudo-random boolean functions.
        consts: expression metavariables → random constants.
        keyed: table name → attribute name that must be a key of it; the
            attribute is forced to a definite path and the relation is
            generated key-consistent.
        max_rows: support-size bound for generated relations.
    """
    keyed = keyed or {}
    interp = Interpretation()
    projections: Dict[str, Callable[[Any], Any]] = {}
    attr_paths: Dict[str, Tuple[str, ...]] = {}
    for attr in attrs:
        path = rng.choice(LEAF_PATHS)
        attr_paths[attr] = path
        projections[attr] = path_projection(path)
    for name in tables:
        key_attr = keyed.get(name)
        if key_attr is not None:
            key_path = attr_paths[key_attr]
            interp.relations[name] = random_keyed_relation(
                rng, CONCRETE, key_path, NAT, max_rows=max_rows)
        else:
            interp.relations[name] = random_relation(
                rng, CONCRETE, NAT, max_rows=max_rows)
        interp.schemas[name] = CONCRETE
    interp.projections.update(projections)
    for pred in preds:
        interp.predicates[pred] = deterministic_predicate(
            rng.randrange(1 << 30))
    for const in consts:
        value = rng.choice((0, 1, 2))
        interp.expressions[const] = (
            lambda _unit, _value=value: _value)
    return interp
