#!/usr/bin/env python
"""Static-analysis tier benchmarks: disprover pruning + guarded plans.

Two tracked comparisons:

1. **Disprover pruning** — the bounded-exhaustive search over a corpus
   of support-determined pairs, with the analysis prunes on vs off.
   Records instances enumerated and wall clock both ways; the prunes
   are lossless, so the verdicts must agree exactly.  The statically-
   empty pairs short-circuit to zero instances.
2. **Guarded-rewrite plan quality** — the planner on workloads where a
   property-guarded rewrite (keyed DISTINCT elimination, tautology /
   contradiction filters, EXCEPT-of-empty) unlocks a cheaper plan the
   syntactic rule suite cannot reach.  Records the cost ratio and that
   every extraction is certified by the verification pipeline.

Usage::

    PYTHONPATH=src python benchmarks/bench_analysis.py [--smoke] [--json]
"""

import argparse
import json
import sys
import time

from repro.core import ast
from repro.core.equivalence import Hypotheses, KeyConstraint
from repro.core.schema import EMPTY, INT, Leaf, Node
from repro.optimizer import TableStats
from repro.optimizer.planner import _PLAN_MEMO, optimize
from repro.solver import disprove

SCHEMA = Node(Leaf(INT), Leaf(INT))
R = ast.Table("R", SCHEMA)
S = ast.Table("S", SCHEMA)
T = ast.Table("T", SCHEMA)
FALSE = ast.PredFalse()

#: Minimum wall-clock speedup the pruned exhaustive search must show on
#: the corpus (full mode; the instance-count ratio is far larger).
PRUNING_SPEEDUP_TARGET = 2.0


def _pruning_corpus(smoke):
    """(lhs, rhs) pairs: support-determined equivalents + static empties."""
    pairs = [
        # DISTINCT-rooted equivalents: the multiplicity clamp applies
        (ast.Distinct(ast.UnionAll(R, R)), ast.Distinct(R)),
        (ast.Distinct(ast.Product(R, S)),
         ast.Distinct(ast.UnionAll(ast.Product(R, S), ast.Product(R, S)))),
        # statically empty on both sides: the short-circuit applies
        (ast.Where(R, FALSE), ast.Product(ast.Where(R, FALSE), S)),
    ]
    if not smoke:
        pairs += [
            (ast.Distinct(ast.Product(ast.Product(R, S), T)),
             ast.Distinct(ast.Product(R, ast.Product(S, T)))),
            (ast.Distinct(ast.Except(ast.UnionAll(R, R), S)),
             ast.Distinct(ast.Except(R, S))),
        ]
    return pairs


def run_pruning(smoke):
    pairs = _pruning_corpus(smoke)
    rows = []
    for analyze in (False, True):
        checked = 0
        started = time.perf_counter()
        verdicts = []
        for lhs, rhs in pairs:
            result = disprove(lhs, rhs, analyze=analyze)
            checked += result.instances_checked
            verdicts.append((result.found, result.exhausted))
        rows.append({
            "analyze": analyze,
            "wall_seconds": time.perf_counter() - started,
            "instances_checked": checked,
            "verdicts": verdicts,
        })
    full, pruned = rows
    assert full["verdicts"] == pruned["verdicts"], \
        "analysis pruning changed a disprover verdict"
    return {
        "pairs": len(pairs),
        "full_instances": full["instances_checked"],
        "pruned_instances": pruned["instances_checked"],
        "instance_ratio": (full["instances_checked"]
                           / max(1, pruned["instances_checked"])),
        "full_seconds": full["wall_seconds"],
        "pruned_seconds": pruned["wall_seconds"],
        "speedup": (full["wall_seconds"] / pruned["wall_seconds"]
                    if pruned["wall_seconds"] else float("inf")),
    }


def _guarded_workloads():
    """(query, hypotheses) pairs where a guarded rewrite unlocks savings."""
    pctx = Node(EMPTY, SCHEMA)
    a = ast.ExprVar("a", pctx, INT)
    taut = ast.PredEq(a, a)
    contra = ast.PredAnd(ast.PredEq(a, ast.Const(0, INT)),
                         ast.PredEq(a, ast.Const(1, INT)))
    key_r = Hypotheses(keys=(KeyConstraint("R", "k", Leaf(INT)),))
    return [
        (ast.Distinct(R), key_r),
        (ast.Distinct(ast.Product(ast.Distinct(R), ast.Distinct(S))),
         Hypotheses()),
        (ast.Where(S, taut), Hypotheses()),
        (ast.Where(S, contra), Hypotheses()),
        (ast.Except(S, ast.Where(R, FALSE)), Hypotheses()),
    ]


def run_guarded(smoke):
    stats = TableStats({"R": 1000.0, "S": 1000.0, "T": 1000.0})
    rows = []
    certification_failures = 0
    _PLAN_MEMO.clear()
    for query, hyps in _guarded_workloads():
        result = optimize(query, stats, hypotheses=hyps)
        if result.certified is not True:
            certification_failures += 1
        rows.append({
            "query": repr(query),
            "original_cost": result.original_cost,
            "best_cost": result.best_cost,
            "improved": result.improved
                        or result.best_plan != result.original,
            "certified": result.certified,
        })
    improved = sum(1 for row in rows if row["improved"])
    total_orig = sum(row["original_cost"] for row in rows)
    total_best = sum(row["best_cost"] for row in rows)
    return {
        "workloads": len(rows),
        "improved": improved,
        "certification_failures": certification_failures,
        "total_original_cost": total_orig,
        "total_best_cost": total_best,
        "cost_ratio": total_orig / total_best if total_best else float("inf"),
        "rows": rows,
    }


def run(smoke=False):
    started = time.perf_counter()
    pruning = run_pruning(smoke)
    guarded = run_guarded(smoke)
    return {
        "wall_seconds": time.perf_counter() - started,
        "pruning": pruning,
        "guarded": guarded,
    }


def check(result, smoke):
    """Gate failures (list of messages); speedups ungated in smoke mode."""
    failures = []
    pruning, guarded = result["pruning"], result["guarded"]
    if pruning["pruned_instances"] >= pruning["full_instances"]:
        failures.append(
            f"analysis: pruning did not shrink the instance space "
            f"({pruning['pruned_instances']} vs "
            f"{pruning['full_instances']})")
    if not smoke and pruning["speedup"] < PRUNING_SPEEDUP_TARGET:
        failures.append(
            f"analysis: disprover pruning speedup {pruning['speedup']:.2f}x "
            f"below the {PRUNING_SPEEDUP_TARGET:.1f}x target")
    if guarded["improved"] < guarded["workloads"]:
        failures.append(
            f"analysis: only {guarded['improved']}/{guarded['workloads']} "
            f"guarded workloads improved")
    if guarded["certification_failures"]:
        failures.append(
            f"analysis: {guarded['certification_failures']} guarded "
            f"extraction(s) failed certification")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus, no speedup gating")
    parser.add_argument("--json", action="store_true",
                        help="print the result payload as JSON")
    args = parser.parse_args(argv)
    result = run(smoke=args.smoke)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        p, g = result["pruning"], result["guarded"]
        print(f"disprover pruning: {p['pruned_instances']} vs "
              f"{p['full_instances']} instances "
              f"({p['instance_ratio']:.1f}x fewer), "
              f"{p['speedup']:.1f}x wall speedup")
        print(f"guarded rewrites: {g['improved']}/{g['workloads']} "
              f"improved, cost ratio {g['cost_ratio']:.2f}x, "
              f"{g['certification_failures']} certification failure(s)")
    failures = check(result, args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
