"""Normalization of UniNomial terms into sum-of-products normal form.

The paper's equational proofs (Figures 1 and 2, Sec. 5.1) all follow the
same plan: denote both sides, then rewrite with the semiring identities of
Sec. 3.4 plus three lemmas:

* **Lemma 5.1** — Σ over a product type splits into nested Σs
  (bound *pair variables* split into components),
* **Lemma 5.2** — ``Σ x. P(x) × (x = s)  =  P(s)``
  (*point elimination* of a bound variable pinned by an equality),
* squash laws — ``‖A×B‖ = ‖A‖×‖B‖``, ``‖A×P‖ = ‖A‖×P`` for props P,
  ``‖n×n‖ = ‖n‖``, ``‖‖A‖‖ = ‖A‖``.

This module performs those rewrites to a fixpoint, producing a structured
normal form:

    NSum  =  Π₁ + Π₂ + ...                 (a bag union of clauses)
    NProduct  =  Σ x̄. a₁ × a₂ × ...        (bound vars and atomic factors)

Atoms are relation applications, equalities, uninterpreted predicates, and
squashed/negated normal forms (for DISTINCT/EXISTS/OR and NOT/EXCEPT).
The equivalence checker (:mod:`repro.core.equivalence`) then decides
equality of normal forms by AC matching, congruence closure, and
homomorphism search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from .intern import KernelLRU, interned, kernel_backend
from .schema import Empty, Node
from .uninomial import (
    Substitution,
    TAgg,
    TApp,
    TConst,
    TFst,
    TPair,
    TSnd,
    TUnit,
    TVar,
    Term,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UOne,
    UPred,
    URel,
    USquash,
    USum,
    UTerm,
    UZero,
    fresh_var,
    subst_term,
    term_free_vars,
    tfst,
    tpair,
    tsnd,
    umul_all,
    uneg,
    usquash,
    usum,
    uterm_free_vars,
)


# ---------------------------------------------------------------------------
# Normal-form data structures
# ---------------------------------------------------------------------------

@interned
@dataclass(frozen=True)
class ARel:
    """Atom ``⟦R⟧ t``."""

    name: str
    arg: Term

    def __str__(self) -> str:
        return f"⟦{self.name}⟧ {self.arg}"


@interned
@dataclass(frozen=True)
class AEq:
    """Atom ``(left = right)`` — oriented deterministically."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} = {self.right})"


@interned
@dataclass(frozen=True)
class APred:
    """Atom ``⟦b⟧ (args)`` — an uninterpreted proposition."""

    name: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        return f"⟦{self.name}⟧ ({', '.join(str(a) for a in self.args)})"


@interned
@dataclass(frozen=True)
class ASquash:
    """Atom ``‖ inner ‖`` — a squashed existential (EXISTS/DISTINCT/OR)."""

    inner: "NSum"

    def __str__(self) -> str:
        return f"‖{self.inner}‖"


@interned
@dataclass(frozen=True)
class ANeg:
    """Atom ``inner → 0`` (NOT / EXCEPT)."""

    inner: "NSum"

    def __str__(self) -> str:
        return f"({self.inner} → 0)"


Atom = Union[ARel, AEq, APred, ASquash, ANeg]

#: Canonical atom order inside a clause: relations, predicates,
#: equalities, squashes, negations — ties broken by rendering.
_ATOM_RANK = {ARel: 0, APred: 1, AEq: 2, ASquash: 3, ANeg: 4}


def _atom_sort_key(atom: Atom) -> Tuple[int, str]:
    """The interned order key of an atom (cached per node)."""
    key = atom.__dict__.get("_hc_order")
    if key is None:
        key = (_ATOM_RANK[type(atom)], str(atom))
        object.__setattr__(atom, "_hc_order", key)
    return key


def _canonize_product(vals: Tuple) -> Tuple:
    """Establish the canonical factor order once, at NProduct construction.

    Factor order is semantically irrelevant (× is commutative); sorting by
    the cached order key here means no rewrite pass ever re-sorts.
    """
    variables, factors = vals
    if type(variables) is not tuple:
        variables = tuple(variables)
    if len(factors) > 1:
        factors = tuple(sorted(factors, key=_atom_sort_key))
    elif type(factors) is not tuple:
        factors = tuple(factors)
    return (variables, factors)


@interned(canonize=_canonize_product)
@dataclass(frozen=True)
class NProduct:
    """A clause ``Σ vars. factor₁ × factor₂ × ...``.

    Factors are stored in the canonical interned order (established at
    construction by :func:`_canonize_product`).
    """

    vars: Tuple[TVar, ...]
    factors: Tuple[Atom, ...]

    @property
    def is_proposition(self) -> bool:
        """True iff the clause is certainly 0/1-valued: no Σ, only prop atoms."""
        cached = self.__dict__.get("_hc_isprop")
        if cached is None:
            cached = not self.vars and all(_atom_is_prop(a)
                                           for a in self.factors)
            object.__setattr__(self, "_hc_isprop", cached)
        return cached

    @property
    def is_trivially_one(self) -> bool:
        """True iff the clause is literally the unit type."""
        return not self.vars and not self.factors

    def __str__(self) -> str:
        binder = "".join(f"Σ{v}:{v.var_schema}. " for v in self.vars)
        if not self.factors:
            return binder + "1"
        return binder + " × ".join(str(f) for f in self.factors)


@interned
@dataclass(frozen=True)
class NSum:
    """A bag union of clauses (the empty union is the type 0)."""

    products: Tuple[NProduct, ...]

    @property
    def is_zero(self) -> bool:
        return not self.products

    def __str__(self) -> str:
        if self.is_zero:
            return "0"
        return " + ".join(f"({p})" for p in self.products)


#: The normal form of 0 and of 1.
NSUM_ZERO = NSum(())
NPRODUCT_ONE = NProduct((), ())
NSUM_ONE = NSum((NPRODUCT_ONE,))


def _atom_is_prop(atom: Atom) -> bool:
    return isinstance(atom, (AEq, APred, ASquash, ANeg))


# ---------------------------------------------------------------------------
# Free variables and substitution on normal forms
# ---------------------------------------------------------------------------

def atom_free_vars(atom: Atom) -> FrozenSet[TVar]:
    """Free tuple variables of an atom (cached per interned node)."""
    cached = atom.__dict__.get("_hc_fv")
    if cached is not None:
        return cached
    if isinstance(atom, ARel):
        out = term_free_vars(atom.arg)
    elif isinstance(atom, AEq):
        out = term_free_vars(atom.left) | term_free_vars(atom.right)
    elif isinstance(atom, APred):
        out = frozenset()
        for a in atom.args:
            out |= term_free_vars(a)
    elif isinstance(atom, (ASquash, ANeg)):
        out = nsum_free_vars(atom.inner)
    else:
        raise TypeError(f"not an atom: {atom!r}")
    object.__setattr__(atom, "_hc_fv", out)
    return out


def product_free_vars(product: NProduct) -> FrozenSet[TVar]:
    """Free variables of a clause, binders removed (cached per node)."""
    cached = product.__dict__.get("_hc_fv")
    if cached is not None:
        return cached
    out: FrozenSet[TVar] = frozenset()
    for f in product.factors:
        out |= atom_free_vars(f)
    out -= frozenset(product.vars)
    object.__setattr__(product, "_hc_fv", out)
    return out


def nsum_free_vars(nsum: NSum) -> FrozenSet[TVar]:
    """Free variables of a normal form (cached per node)."""
    cached = nsum.__dict__.get("_hc_fv")
    if cached is not None:
        return cached
    out: FrozenSet[TVar] = frozenset()
    for p in nsum.products:
        out |= product_free_vars(p)
    object.__setattr__(nsum, "_hc_fv", out)
    return out


def atom_subst(atom: Atom, sub: Substitution) -> Atom:
    """Capture-avoiding substitution on an atom.

    Atoms untouched by the substitution (cached free variables disjoint
    from its domain) are returned unchanged, preserving node sharing.
    """
    if not sub or atom_free_vars(atom).isdisjoint(sub):
        return atom
    if isinstance(atom, ARel):
        return ARel(atom.name, subst_term(atom.arg, sub))
    if isinstance(atom, AEq):
        return _orient_eq(subst_term(atom.left, sub), subst_term(atom.right, sub))
    if isinstance(atom, APred):
        return APred(atom.name, tuple(subst_term(a, sub) for a in atom.args))
    if isinstance(atom, ASquash):
        return ASquash(nsum_subst(atom.inner, sub))
    if isinstance(atom, ANeg):
        return ANeg(nsum_subst(atom.inner, sub))
    raise TypeError(f"not an atom: {atom!r}")


def product_subst(product: NProduct, sub: Substitution) -> NProduct:
    """Substitute into a clause (binders are globally fresh, so no capture)."""
    inner = {v: t for v, t in sub.items() if v not in product.vars}
    if not inner or product_free_vars(product).isdisjoint(inner):
        return product
    return NProduct(product.vars,
                    tuple(atom_subst(f, inner) for f in product.factors))


def nsum_subst(nsum: NSum, sub: Substitution) -> NSum:
    """Substitute into a normal form."""
    if not sub or nsum_free_vars(nsum).isdisjoint(sub):
        return nsum
    return NSum(tuple(product_subst(p, sub) for p in nsum.products))


def _orient_eq(left: Term, right: Term) -> AEq:
    """Store equalities in a deterministic orientation."""
    if _term_order_key(right) < _term_order_key(left):
        left, right = right, left
    return AEq(left, right)


def _term_order_key(term: Term) -> Tuple[int, str]:
    return (0 if isinstance(term, TVar) else 1, str(term))


# ---------------------------------------------------------------------------
# Alpha-equivalence keys
#
# Binders are globally fresh, so two alpha-equivalent squash contents are
# never syntactically equal.  These functions compute canonical keys with
# positional (de Bruijn-style) labels for bound variables; comparing keys
# decides alpha-equivalence, which the engine uses for deduplication under
# truncations (``‖n × n‖ = ‖n‖``) and for matching negation atoms.
#
# With the interned kernel the keys are cached: every node stores its
# *closed* key (the ``env = {}`` computation), and a non-empty labelling
# can reuse it whenever the node is **binder-insensitive** (it contains no
# construct whose labels depend on the size of the ambient environment —
# no ``Σ`` under terms, no squashed/negated sub-sums under atoms) and its
# free variables are disjoint from the labelling's domain.  That covers
# the engine's hottest calls — env-less keys during absorption and
# deduplication — with an O(1) lookup.
# ---------------------------------------------------------------------------

def _term_binder_sensitive(term: Term) -> bool:
    """Does the term's key depend on the ambient environment's *size*?"""
    cached = term.__dict__.get("_hc_bsens")
    if cached is not None:
        return cached
    if isinstance(term, (TVar, TUnit, TConst)):
        result = False
    elif isinstance(term, TPair):
        result = (_term_binder_sensitive(term.left)
                  or _term_binder_sensitive(term.right))
    elif isinstance(term, (TFst, TSnd)):
        result = _term_binder_sensitive(term.arg)
    elif isinstance(term, TApp):
        result = any(_term_binder_sensitive(a) for a in term.args)
    elif isinstance(term, TAgg):
        # The ``@agg`` label itself is constant, but Σs in the body label
        # by environment size.
        result = _uterm_binder_sensitive(term.body)
    else:
        raise TypeError(f"not a term: {term!r}")
    object.__setattr__(term, "_hc_bsens", result)
    return result


def _uterm_binder_sensitive(u: UTerm) -> bool:
    cached = u.__dict__.get("_hc_bsens")
    if cached is not None:
        return cached
    if isinstance(u, (UZero, UOne)):
        result = False
    elif isinstance(u, (UAdd, UMul)):
        result = (_uterm_binder_sensitive(u.left)
                  or _uterm_binder_sensitive(u.right))
    elif isinstance(u, (USquash, UNeg)):
        result = _uterm_binder_sensitive(u.arg)
    elif isinstance(u, USum):
        result = True
    elif isinstance(u, UEq):
        result = (_term_binder_sensitive(u.left)
                  or _term_binder_sensitive(u.right))
    elif isinstance(u, URel):
        result = _term_binder_sensitive(u.arg)
    elif isinstance(u, UPred):
        result = any(_term_binder_sensitive(a) for a in u.args)
    else:
        raise TypeError(f"not a UTerm: {u!r}")
    object.__setattr__(u, "_hc_bsens", result)
    return result


def _atom_binder_sensitive(atom: Atom) -> bool:
    cached = atom.__dict__.get("_hc_bsens")
    if cached is not None:
        return cached
    if isinstance(atom, (ASquash, ANeg)):
        result = True  # clause labels inside depend on env size
    elif isinstance(atom, ARel):
        result = _term_binder_sensitive(atom.arg)
    elif isinstance(atom, AEq):
        result = (_term_binder_sensitive(atom.left)
                  or _term_binder_sensitive(atom.right))
    elif isinstance(atom, APred):
        result = any(_term_binder_sensitive(a) for a in atom.args)
    else:
        raise TypeError(f"not an atom: {atom!r}")
    object.__setattr__(atom, "_hc_bsens", result)
    return result


def _cached_closed_key(node, compute) -> Tuple:
    key = node.__dict__.get("_hc_akey")
    if key is None:
        key = compute(node, {})
        object.__setattr__(node, "_hc_akey", key)
    return key


def term_alpha_key(term: Term, env: Dict[TVar, str] | None = None) -> Tuple:
    """Canonical structural key of a term under a bound-variable labelling."""
    if env and (_term_binder_sensitive(term)
                or not term_free_vars(term).isdisjoint(env)):
        return _term_alpha_key_env(term, env)
    return _cached_closed_key(term, _term_alpha_key_env)


def _term_alpha_key_env(term: Term, env: Dict[TVar, str]) -> Tuple:
    if isinstance(term, TVar):
        return ("var", env.get(term, term.name), str(term.var_schema))
    if isinstance(term, TUnit):
        return ("unit",)
    if isinstance(term, TPair):
        return ("pair", term_alpha_key(term.left, env),
                term_alpha_key(term.right, env))
    if isinstance(term, TFst):
        return ("fst", term_alpha_key(term.arg, env))
    if isinstance(term, TSnd):
        return ("snd", term_alpha_key(term.arg, env))
    if isinstance(term, TConst):
        return ("const", term.ty.name, repr(term.value))
    if isinstance(term, TApp):
        return ("app", term.fn, str(term.result_schema),
                tuple(term_alpha_key(a, env) for a in term.args))
    if isinstance(term, TAgg):
        inner = dict(env)
        inner[term.var] = "@agg"
        return ("agg", term.name, term.ty.name,
                uterm_alpha_key(term.body, inner))
    raise TypeError(f"not a term: {term!r}")


def uterm_alpha_key(u: UTerm, env: Dict[TVar, str] | None = None) -> Tuple:
    """Canonical key of a raw UniNomial term (used inside aggregates)."""
    if env and (_uterm_binder_sensitive(u)
                or not uterm_free_vars(u).isdisjoint(env)):
        return _uterm_alpha_key_env(u, env)
    return _cached_closed_key(u, _uterm_alpha_key_env)


def _uterm_alpha_key_env(u: UTerm, env: Dict[TVar, str]) -> Tuple:
    if isinstance(u, UZero):
        return ("zero",)
    if isinstance(u, UOne):
        return ("one",)
    if isinstance(u, UAdd):
        return ("add", uterm_alpha_key(u.left, env), uterm_alpha_key(u.right, env))
    if isinstance(u, UMul):
        return ("mul", uterm_alpha_key(u.left, env), uterm_alpha_key(u.right, env))
    if isinstance(u, USquash):
        return ("squash", uterm_alpha_key(u.arg, env))
    if isinstance(u, UNeg):
        return ("neg", uterm_alpha_key(u.arg, env))
    if isinstance(u, USum):
        inner = dict(env)
        inner[u.var] = f"@{len(env)}"
        return ("sum", str(u.var.var_schema), uterm_alpha_key(u.body, inner))
    if isinstance(u, UEq):
        return ("eq", term_alpha_key(u.left, env), term_alpha_key(u.right, env))
    if isinstance(u, URel):
        return ("rel", u.name, term_alpha_key(u.arg, env))
    if isinstance(u, UPred):
        return ("pred", u.name, tuple(term_alpha_key(a, env) for a in u.args))
    raise TypeError(f"not a UTerm: {u!r}")


def atom_alpha_key(atom: Atom, env: Dict[TVar, str] | None = None) -> Tuple:
    """Canonical key of a normal-form atom."""
    if env and (_atom_binder_sensitive(atom)
                or not atom_free_vars(atom).isdisjoint(env)):
        return _atom_alpha_key_env(atom, env)
    return _cached_closed_key(atom, _atom_alpha_key_env)


def _atom_alpha_key_env(atom: Atom, env: Dict[TVar, str]) -> Tuple:
    if isinstance(atom, ARel):
        return ("rel", atom.name, term_alpha_key(atom.arg, env))
    if isinstance(atom, AEq):
        keys = sorted((term_alpha_key(atom.left, env),
                       term_alpha_key(atom.right, env)))
        return ("eq", keys[0], keys[1])
    if isinstance(atom, APred):
        return ("pred", atom.name,
                tuple(term_alpha_key(a, env) for a in atom.args))
    if isinstance(atom, ASquash):
        return ("squash", nsum_alpha_key(atom.inner, env))
    if isinstance(atom, ANeg):
        return ("negsum", nsum_alpha_key(atom.inner, env))
    raise TypeError(f"not an atom: {atom!r}")


def product_alpha_key(product: NProduct,
                      env: Dict[TVar, str] | None = None) -> Tuple:
    """Canonical key of a clause: binders become positional labels."""
    if env:
        return _product_alpha_key_env(product, env)
    return _cached_closed_key(product, _product_alpha_key_env)


def _product_alpha_key_env(product: NProduct, env: Dict[TVar, str]) -> Tuple:
    env = dict(env) if env else {}
    for i, v in enumerate(product.vars):
        env[v] = f"@{len(env)}.{i}"
    schemas = tuple(sorted(str(v.var_schema) for v in product.vars))
    factor_keys = tuple(sorted(atom_alpha_key(f, env) for f in product.factors))
    return ("product", schemas, factor_keys)


def nsum_alpha_key(nsum: NSum, env: Dict[TVar, str] | None = None) -> Tuple:
    """Canonical key of a normal form (clause order irrelevant)."""
    if env:
        return _nsum_alpha_key_env(nsum, env)
    return _cached_closed_key(nsum, _nsum_alpha_key_env)


def _nsum_alpha_key_env(nsum: NSum, env: Dict[TVar, str]) -> Tuple:
    return ("nsum", tuple(sorted(product_alpha_key(p, env)
                                 for p in nsum.products)))


def atoms_alpha_equal(a: Atom, b: Atom) -> bool:
    """Alpha-equivalence of two atoms."""
    return a is b or atom_alpha_key(a) == atom_alpha_key(b)


def nsums_alpha_equal(a: NSum, b: NSum) -> bool:
    """Alpha-equivalence of two normal forms."""
    return a is b or nsum_alpha_key(a) == nsum_alpha_key(b)


# ---------------------------------------------------------------------------
# Rebuilding UTerms (for display and for the proof-size metric)
# ---------------------------------------------------------------------------

def atom_to_uterm(atom: Atom) -> UTerm:
    """Render an atom back into the UniNomial language."""
    if isinstance(atom, ARel):
        return URel(atom.name, atom.arg)
    if isinstance(atom, AEq):
        return UEq(atom.left, atom.right)
    if isinstance(atom, APred):
        return UPred(atom.name, atom.args)
    if isinstance(atom, ASquash):
        return usquash(nsum_to_uterm(atom.inner))
    if isinstance(atom, ANeg):
        return uneg(nsum_to_uterm(atom.inner))
    raise TypeError(f"not an atom: {atom!r}")


def product_to_uterm(product: NProduct) -> UTerm:
    """Render a clause back into the UniNomial language."""
    body = umul_all([atom_to_uterm(f) for f in product.factors])
    for var in reversed(product.vars):
        body = usum(var, body)
    return body


def nsum_to_uterm(nsum: NSum) -> UTerm:
    """Render a normal form back into the UniNomial language."""
    if nsum.is_zero:
        return UZero()
    result: Optional[UTerm] = None
    for p in reversed(nsum.products):
        u = product_to_uterm(p)
        result = u if result is None else UAdd(u, result)
    assert result is not None
    return result


# ---------------------------------------------------------------------------
# The normalizer
# ---------------------------------------------------------------------------

#: Memo table for :func:`normalize`, keyed on interned ``UTerm`` identity
#: (hashing an interned node is an O(1) stored-slot read, and equality is
#: pointer equality for canonical nodes).  Bounded, thread-safe, counted;
#: the counters surface through ``ProofStats`` and ``check --verbose``.
_NORMALIZE_MEMO = KernelLRU(4096, "normalize")


def normalize(u: UTerm) -> NSum:
    """Normalize a UniNomial term to sum-of-products normal form.

    Memoized on the interned term: repeated normalization of the same
    (pointer-identical) ``UTerm`` is a table lookup.  Sound because the
    result is determined by the term up to the choice of globally fresh
    binder names, and binders of a normal form are never reused as free
    variables elsewhere.

    Dispatches on the active kernel backend (``REPRO_KERNEL=arena|object``,
    see :func:`repro.core.intern.set_kernel_backend`): the arena backend
    runs the same rewrites over flat int ids and decodes the result back
    into interned objects; inputs the arena cannot represent fall back to
    the object pipeline.  The memo is keyed per backend so the
    differential test suite can exercise both sides in one process.
    """
    backend = kernel_backend()
    key = u if backend == "object" else (u, backend)
    hit = _NORMALIZE_MEMO.get(key)
    if hit is not None:
        return hit
    if backend == "arena":
        # Imported here (not at module top) to break the normalize ⇄
        # arena cycle, but eagerly at first *module* use via the
        # module-bottom import below — a lazy first import inside a
        # timed region costs ~15 ms of compile.
        try:
            nsum = arena_normalize(u)
        except ArenaUnsupported:
            nsum = _refine_nsum(_translate(u))
    else:
        nsum = _refine_nsum(_translate(u))
    _NORMALIZE_MEMO.put(key, nsum)
    return nsum


def normalize_stats() -> Dict[str, float]:
    """Hit/miss counters of the ``normalize`` memo table."""
    return _NORMALIZE_MEMO.stats()


def normalize_arena_id(ar, uid: int) -> NSum:
    """Normal form of an arena UniNomial id (arena-backend fast path).

    Shares ``normalize``'s memo — and therefore its hit/miss counters —
    keyed on the arena epoch + id, so ``ProofStats`` and the pipeline
    report the same traffic whether a term arrives as an interned object
    or as an id that never left the arena.
    """
    key = ("arena-id", ar.epoch, uid)
    hit = _NORMALIZE_MEMO.get(key)
    if hit is not None:
        return hit
    nsum = ar.normalize_uid(uid)
    _NORMALIZE_MEMO.put(key, nsum)
    return nsum


def _translate(u: UTerm) -> NSum:
    """Structural translation; distributes × over + and hoists Σ."""
    if isinstance(u, UZero):
        return NSUM_ZERO
    if isinstance(u, UOne):
        return NSUM_ONE
    if isinstance(u, UAdd):
        left = _translate(u.left)
        right = _translate(u.right)
        return NSum(left.products + right.products)
    if isinstance(u, UMul):
        left = _translate(u.left)
        right = _translate(u.right)
        out: List[NProduct] = []
        for p in left.products:
            for q in right.products:
                q2 = _freshen(q)
                out.append(NProduct(p.vars + q2.vars, p.factors + q2.factors))
        return NSum(tuple(out))
    if isinstance(u, USum):
        inner = _translate(u.body)
        out = []
        for p in inner.products:
            renamed = fresh_var(u.var.var_schema, _hint(u.var))
            p2 = product_subst(p, {u.var: renamed})
            out.append(NProduct((renamed,) + p2.vars, p2.factors))
        return NSum(tuple(out))
    if isinstance(u, USquash):
        return _squash_nsum(_translate(u.arg))
    if isinstance(u, UNeg):
        return _neg_nsum(_translate(u.arg))
    if isinstance(u, UEq):
        factors = _eq_factors(u.left, u.right)
        if factors is None:
            return NSUM_ZERO
        return NSum((NProduct((), tuple(factors)),))
    if isinstance(u, URel):
        return NSum((NProduct((), (ARel(u.name, u.arg),)),))
    if isinstance(u, UPred):
        return NSum((NProduct((), (APred(u.name, u.args),)),))
    raise TypeError(f"not a UTerm: {u!r}")


def _squash_nsum(inner: NSum) -> NSum:
    """Wrap a normal form in a truncation atom (simplified during refinement)."""
    return NSum((NProduct((), (ASquash(inner),)),))


def _neg_nsum(inner: NSum) -> NSum:
    """Wrap a normal form in a negation atom (simplified during refinement)."""
    return NSum((NProduct((), (ANeg(inner),)),))


def _hint(var: TVar) -> str:
    return var.name.split("$")[0]


def _freshen(product: NProduct) -> NProduct:
    """Rename all binders of a clause to globally fresh variables."""
    if not product.vars:
        return product
    sub: Substitution = {}
    new_vars = []
    for v in product.vars:
        nv = fresh_var(v.var_schema, _hint(v))
        sub[v] = nv
        new_vars.append(nv)
    return NProduct(tuple(new_vars),
                    tuple(atom_subst(f, sub) for f in product.factors))


def _eq_factors(left: Term, right: Term) -> Optional[List[Atom]]:
    """Decompose an equality along the (concrete part of the) schema.

    Returns ``None`` when the equality is refutable (distinct constants),
    the empty list when it is trivially true, and a list of ``AEq`` atoms
    otherwise.  Pair-shaped equalities split component-wise:
    ``((a, b) = t)  =  (a = t.1) × (b = t.2)``.
    """
    if left == right:
        return []
    schema = left.schema
    if isinstance(schema, Empty):
        return []
    if isinstance(schema, Node) or isinstance(left, TPair) or isinstance(right, TPair):
        first = _eq_factors(tfst(left), tfst(right))
        if first is None:
            return None
        second = _eq_factors(tsnd(left), tsnd(right))
        if second is None:
            return None
        return first + second
    if isinstance(left, TConst) and isinstance(right, TConst):
        return [] if left.value == right.value else None
    return [_orient_eq(left, right)]


# ---------------------------------------------------------------------------
# Clause refinement: variable splitting, point elimination, squash laws
# ---------------------------------------------------------------------------

def _refine_nsum(nsum: NSum) -> NSum:
    out: List[NProduct] = []
    for p in nsum.products:
        refined = _refine_product(p)
        if refined is not None:
            out.append(refined)
    return NSum(tuple(out))


def _refine_product(product: NProduct) -> Optional[NProduct]:
    """Apply Lemmas 5.1/5.2 and squash simplification to a fixpoint.

    Returns ``None`` when the clause denotes the empty type.
    """
    vars_list = list(product.vars)
    factors = list(product.factors)

    changed = True
    while changed:
        changed = False

        # Lemma 5.1 — split bound pair variables; drop unit variables.
        for i, var in enumerate(vars_list):
            schema = var.var_schema
            if isinstance(schema, Empty):
                sub = {var: _unit_term()}
                del vars_list[i]
                factors = [atom_subst(f, sub) for f in factors]
                changed = True
                break
            if isinstance(schema, Node):
                v1 = fresh_var(schema.left, _hint(var))
                v2 = fresh_var(schema.right, _hint(var))
                sub = {var: tpair(v1, v2)}
                vars_list[i:i + 1] = [v1, v2]
                factors = [atom_subst(f, sub) for f in factors]
                changed = True
                break
        if changed:
            continue

        # Re-decompose equalities whose sides became pairs, detect refutation.
        new_factors: List[Atom] = []
        decomposed = False
        refuted = False
        for f in factors:
            if isinstance(f, AEq):
                pieces = _eq_factors(f.left, f.right)
                if pieces is None:
                    refuted = True
                    break
                if len(pieces) != 1 or pieces[0] != f:
                    decomposed = True
                new_factors.extend(pieces)
            else:
                new_factors.append(f)
        if refuted:
            return None
        if decomposed:
            factors = new_factors
            changed = True
            continue
        factors = new_factors

        # Lemma 5.2 — point elimination of pinned bound variables.
        eliminated = False
        for i, f in enumerate(factors):
            if not isinstance(f, AEq):
                continue
            pin = _pinned_var(f, vars_list)
            if pin is None:
                continue
            var, replacement = pin
            vars_list.remove(var)
            del factors[i]
            sub = {var: replacement}
            factors = [atom_subst(g, sub) for g in factors]
            eliminated = True
            break
        if eliminated:
            changed = True
            continue

        # Squash / negation simplification of nested normal forms.
        simplified, factors_or_none = _simplify_nested(factors)
        if factors_or_none is None:
            return None
        if simplified:
            factors = factors_or_none
            changed = True
            continue
        factors = factors_or_none

    # No sort: NProduct construction establishes the canonical factor
    # order via the interned order key.
    return NProduct(tuple(vars_list), tuple(factors))


def _unit_term() -> Term:
    from .uninomial import TUnit
    return TUnit()


def _pinned_var(atom: AEq, bound: Sequence[TVar]) -> Optional[Tuple[TVar, Term]]:
    """Find ``x = s`` with x bound and x not free in s (either orientation)."""
    for var_side, other in ((atom.left, atom.right), (atom.right, atom.left)):
        if isinstance(var_side, TVar) and var_side in bound \
                and var_side not in term_free_vars(other):
            return var_side, other
    return None


def _simplify_nested(factors: List[Atom]) -> Tuple[bool, Optional[List[Atom]]]:
    """Normalize squashed/negated sub-sums and apply the squash laws.

    Returns ``(changed, new_factors)``; ``new_factors is None`` marks the
    whole clause as the empty type.
    """
    changed = False
    out: List[Atom] = []
    for f in factors:
        if isinstance(f, ASquash):
            inner = _refine_nsum(_dedup_under_squash(f.inner))
            if inner.is_zero:
                return True, None
            if any(p.is_trivially_one for p in inner.products):
                changed = True  # ‖1 + ...‖ = 1: the factor vanishes
                continue
            pulled, remainder = _pull_props(inner)
            if pulled:
                changed = True
                out.extend(pulled)
                if remainder is not None:
                    out.append(ASquash(remainder))
                continue
            if inner != f.inner:
                changed = True
            out.append(ASquash(inner))
        elif isinstance(f, ANeg):
            inner = _refine_nsum(_dedup_under_squash(f.inner))
            if inner.is_zero:
                changed = True  # (0 → 0) = 1: the factor vanishes
                continue
            if any(p.is_trivially_one for p in inner.products):
                return True, None  # (1 → 0) = 0
            if len(inner.products) == 1:
                lone = inner.products[0]
                if not lone.vars and len(lone.factors) == 1:
                    only = lone.factors[0]
                    if isinstance(only, ANeg):
                        # ¬¬X = ‖X‖ (Sec. 3.4); the re-run simplifies the
                        # squash (prop contents collapse to themselves).
                        changed = True
                        out.append(ASquash(only.inner))
                        continue
                    if isinstance(only, ASquash):
                        # ¬‖X‖ = ¬X (uneg's squash law).
                        changed = True
                        out.append(ANeg(only.inner))
                        continue
            if inner != f.inner:
                changed = True
            out.append(ANeg(inner))
        else:
            out.append(f)
    return changed, out


def _dedup_under_squash(nsum: NSum) -> NSum:
    """Under ‖·‖ (or → 0), duplicates do not matter: ``‖n × n‖ = ‖n‖``.

    Deduplicates identical factors within each clause and identical clauses
    within the sum.  Only sound under a truncation, which is the only place
    this is called.
    """
    out_products = []
    seen_product_keys = set()
    for p in nsum.products:
        factor_keys = set()
        env: Dict[TVar, str] = {}
        for i, v in enumerate(p.vars):
            env[v] = f"@{i}"
        dedup_factors = []
        for f in p.factors:
            key = atom_alpha_key(f, env)
            if key in factor_keys:
                continue
            factor_keys.add(key)
            dedup_factors.append(f)
        q = NProduct(p.vars, tuple(dedup_factors))
        q_key = product_alpha_key(q)
        if q_key not in seen_product_keys:
            seen_product_keys.add(q_key)
            out_products.append(q)
    return NSum(tuple(out_products))


def _pull_props(inner: NSum) -> Tuple[List[Atom], Optional[NSum]]:
    """``‖A × P‖ = ‖A‖ × P`` — hoist prop factors out of a squash.

    Only applies when the squash wraps a single clause with no binders
    (otherwise the props may mention bound variables).  Returns the hoisted
    prop atoms and the residual squash content (``None`` when everything was
    hoisted or the remainder is a lone prop).
    """
    if len(inner.products) != 1:
        return [], inner
    product = inner.products[0]
    if product.vars:
        return [], inner
    props = [f for f in product.factors if _atom_is_prop(f)]
    rest = [f for f in product.factors if not _atom_is_prop(f)]
    if not props:
        return [], inner
    if not rest:
        return props, None
    return props, NSum((NProduct((), tuple(rest)),))


__all__ = [
    "AEq",
    "ANeg",
    "APred",
    "ARel",
    "ASquash",
    "Atom",
    "NProduct",
    "NSum",
    "NSUM_ONE",
    "NSUM_ZERO",
    "atom_free_vars",
    "atom_subst",
    "atom_to_uterm",
    "normalize",
    "nsum_free_vars",
    "nsum_subst",
    "nsum_to_uterm",
    "product_free_vars",
    "product_subst",
    "product_to_uterm",
]

# Imported last: the arena mirrors this module's rewrites over flat int
# ids and lazily imports the normal-form classes above for decoding, so
# the import must come after they exist.  Importing it at module load
# (rather than on the first arena-backend ``normalize`` call) keeps the
# ~15 ms compile of the arena module out of callers' timed regions.
from .arena import ArenaUnsupported, arena_normalize  # noqa: E402
