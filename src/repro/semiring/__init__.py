"""Semiring substrate: cardinals, semirings, K-relations, provenance.

This package implements the mathematical substrate the paper builds on:
K-relations over commutative semirings (Green et al., PODS 2007) and the
paper's generalization to infinite cardinal multiplicities.
"""

from .cardinal import (
    Cardinal,
    OMEGA,
    ONE,
    ZERO,
    cardinal_product,
    cardinal_sum,
)
from .krelation import KRelation
from .provenance import (
    PROVENANCE,
    Polynomial,
    ProvenanceSemiring,
    annotate_distinctly,
)
from .semirings import (
    BOOL,
    BoolSemiring,
    NAT,
    NAT_INF,
    NatInfSemiring,
    NatSemiring,
    STANDARD_SEMIRINGS,
    Semiring,
    TROPICAL,
    TropicalSemiring,
    check_semiring_laws,
)

__all__ = [
    "BOOL",
    "BoolSemiring",
    "Cardinal",
    "KRelation",
    "NAT",
    "NAT_INF",
    "NatInfSemiring",
    "NatSemiring",
    "OMEGA",
    "ONE",
    "PROVENANCE",
    "Polynomial",
    "ProvenanceSemiring",
    "STANDARD_SEMIRINGS",
    "Semiring",
    "TROPICAL",
    "TropicalSemiring",
    "ZERO",
    "annotate_distinctly",
    "cardinal_product",
    "cardinal_sum",
    "check_semiring_laws",
]
