"""Named surface AST — what the parser produces.

This is conventional SQL structure with *names*: column references are
``alias.column`` or bare ``column``, FROM items carry aliases, SELECT items
may be starred or aliased expressions.  The resolver
(:mod:`repro.sql.resolve`) compiles this into the unnamed HoTTSQL core AST,
performing the name-to-path translation that users of the Coq artifact do
by hand (paper Sec. 3.1, "Discussion").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class NQuery:
    """Base class of named queries."""

    __slots__ = ()


class NExpr:
    """Base class of named scalar expressions."""

    __slots__ = ()


class NPred:
    """Base class of named predicates."""

    __slots__ = ()


# -- expressions --------------------------------------------------------------

@dataclass(frozen=True)
class NColumn(NExpr):
    """A column reference ``alias.column`` (or bare ``column``)."""

    table: Optional[str]
    column: str


@dataclass(frozen=True)
class NLiteral(NExpr):
    """An integer, string, or boolean literal."""

    value: object


@dataclass(frozen=True)
class NFuncCall(NExpr):
    """A scalar function application ``f(e1, ..., en)``."""

    name: str
    args: Tuple[NExpr, ...]


@dataclass(frozen=True)
class NBinOp(NExpr):
    """An infix arithmetic expression ``e1 op e2`` with op ∈ {+, -, *, /}."""

    op: str
    left: NExpr
    right: NExpr


@dataclass(frozen=True)
class NAggCall(NExpr):
    """An aggregate call ``SUM(e)`` etc.

    Legal under GROUP BY and as a top-level SELECT item of an ungrouped
    query (a *scalar* aggregate — desugared as single-group aggregation)."""

    name: str
    arg: NExpr


@dataclass(frozen=True)
class NAggQuery(NExpr):
    """An aggregate over a correlated subquery — produced by the GROUP BY
    desugaring (paper Sec. 4.2), never by the parser directly."""

    name: str
    query: "NQuery"


# -- predicates ----------------------------------------------------------------

@dataclass(frozen=True)
class NComparison(NPred):
    """``e1 op e2`` with op ∈ {=, <>, <, <=, >, >=}."""

    op: str
    left: NExpr
    right: NExpr


@dataclass(frozen=True)
class NAnd(NPred):
    left: NPred
    right: NPred


@dataclass(frozen=True)
class NOr(NPred):
    left: NPred
    right: NPred


@dataclass(frozen=True)
class NNot(NPred):
    operand: NPred


@dataclass(frozen=True)
class NBoolLit(NPred):
    value: bool


@dataclass(frozen=True)
class NExists(NPred):
    """``EXISTS (subquery)`` — the subquery may be correlated."""

    query: "NQuery"


# -- queries --------------------------------------------------------------------

@dataclass(frozen=True)
class NSelectItem:
    """One SELECT-list entry: an expression with an optional output name."""

    expr: NExpr
    alias: Optional[str]


@dataclass(frozen=True)
class NFromItem:
    """One FROM entry: a base table or a parenthesized subquery, aliased."""

    source: object            # str (table name) or NQuery
    alias: str


@dataclass(frozen=True)
class NSelect(NQuery):
    """A SELECT block, possibly with DISTINCT, GROUP BY, and HAVING."""

    distinct: bool
    items: Tuple[NSelectItem, ...]    # empty tuple means SELECT *
    from_items: Tuple[NFromItem, ...]
    where: Optional[NPred]
    group_by: Optional[NColumn]
    having: Optional[NPred] = None


@dataclass(frozen=True)
class NUnionAll(NQuery):
    left: NQuery
    right: NQuery


@dataclass(frozen=True)
class NExcept(NQuery):
    left: NQuery
    right: NQuery
