"""Figure 10 — the containment mappings found by the decision procedure.

The paper visualizes the two homomorphisms its Ltac search discovers for
the Sec. 5.2 example.  We regenerate them: the decision procedure returns
the witness assignments, which this benchmark renders as the same two
mappings (blue: left→right, red: right→left in the paper's figure).
"""

from repro.core.conjunctive import decide_cq
from repro.rules.conjunctive import fig10_queries


def test_figure10_report(report, benchmark):
    lhs, rhs = fig10_queries()
    decision = benchmark(lambda: decide_cq(lhs, rhs))
    assert decision.equivalent

    report.add("Figure 10 — containment mappings for the Sec. 5.2 example")
    report.add("=" * 64)
    report.add("Q_a: SELECT DISTINCT x.c1 FROM R1 x, R2 y "
               "WHERE x.c2 = y.c3")
    report.add("Q_b: SELECT DISTINCT x.c1 FROM R1 x, R1 y, R2 z")
    report.add("     WHERE x.c1 = y.c1 AND x.c2 = z.c3")
    report.add("")
    report.add("Mapping proving Q_a → Q_b (the paper's blue arrows):")
    for line in decision.forward.render():
        report.add(f"  {line}")
    report.add("")
    report.add("Mapping proving Q_b → Q_a (the paper's red arrows):")
    for line in decision.backward.render():
        report.add(f"  {line}")
    report.emit("fig10_mappings")


def test_figure10_witnesses_are_wellformed(benchmark):
    lhs, rhs = fig10_queries()
    decision = benchmark(lambda: decide_cq(lhs, rhs))
    # Forward: the single (R1 × R2) pair instantiates the triple by
    # duplicating the R1 tuple; backward collapses the duplicate.
    assert decision.forward.assignment
    assert decision.backward.assignment
    forward_terms = {str(t) for t in decision.forward.assignment.values()}
    assert forward_terms   # non-trivial instantiation
