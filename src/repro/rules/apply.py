"""Applying generic rewrite rules to concrete queries.

A verified rule is a *schema*: ``σ_b(R ∪ S) ≡ σ_b(R) ∪ σ_b(S)`` holds for
every relation R, S and predicate b.  Using it in an optimizer means
**matching** its left-hand side against a concrete plan — binding the
metavariables — and **substituting** the bindings into the right-hand
side.

Matching is structural:

* a ``Table`` metavariable binds any concrete subquery (the same name
  must bind the same subquery everywhere),
* a ``PredVar`` binds any concrete predicate, a ``PVar`` any projection,
* all other nodes must match constructor-by-constructor.

Binding a *correlated* subquery to a Table metavariable would be unsound
(tables denote context-independent relations), and CASTPRED patterns are
not invertible structurally; rather than reason about those cases
syntactically, every application is **certified**: the rewritten query is
proved equivalent to the original by the engine before it is returned.
An application that cannot be certified is discarded — the optimizer
never acts on an unproven rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import ast
from .rule import RewriteRule


@dataclass
class Bindings:
    """Metavariable assignments accumulated during matching."""

    tables: Dict[str, ast.Query]
    predicates: Dict[str, ast.Predicate]
    projections: Dict[str, ast.Projection]

    @staticmethod
    def empty() -> "Bindings":
        return Bindings({}, {}, {})

    def copy(self) -> "Bindings":
        return Bindings(dict(self.tables), dict(self.predicates),
                        dict(self.projections))


class MatchFailure(Exception):
    """Internal: the pattern does not match here."""


def match_query(pattern: ast.Query, concrete: ast.Query,
                bindings: Bindings) -> None:
    """Match a query pattern, extending ``bindings`` (raises on failure)."""
    if isinstance(pattern, ast.Table):
        bound = bindings.tables.get(pattern.name)
        if bound is None:
            bindings.tables[pattern.name] = concrete
        elif bound != concrete:
            raise MatchFailure(pattern.name)
        return
    if type(pattern) is not type(concrete):
        raise MatchFailure(type(pattern).__name__)
    if isinstance(pattern, ast.Select):
        match_projection(pattern.projection, concrete.projection, bindings)
        match_query(pattern.query, concrete.query, bindings)
        return
    if isinstance(pattern, (ast.Product, ast.UnionAll, ast.Except)):
        match_query(pattern.left, concrete.left, bindings)
        match_query(pattern.right, concrete.right, bindings)
        return
    if isinstance(pattern, ast.Where):
        match_query(pattern.query, concrete.query, bindings)
        match_predicate(pattern.predicate, concrete.predicate, bindings)
        return
    if isinstance(pattern, ast.Distinct):
        match_query(pattern.query, concrete.query, bindings)
        return
    raise MatchFailure(type(pattern).__name__)


def match_predicate(pattern: ast.Predicate, concrete: ast.Predicate,
                    bindings: Bindings) -> None:
    if isinstance(pattern, ast.PredVar):
        bound = bindings.predicates.get(pattern.name)
        if bound is None:
            bindings.predicates[pattern.name] = concrete
        elif bound != concrete:
            raise MatchFailure(pattern.name)
        return
    if type(pattern) is not type(concrete):
        raise MatchFailure(type(pattern).__name__)
    if isinstance(pattern, (ast.PredAnd, ast.PredOr)):
        match_predicate(pattern.left, concrete.left, bindings)
        match_predicate(pattern.right, concrete.right, bindings)
        return
    if isinstance(pattern, ast.PredNot):
        match_predicate(pattern.operand, concrete.operand, bindings)
        return
    if isinstance(pattern, (ast.PredTrue, ast.PredFalse)):
        return
    if isinstance(pattern, ast.Exists):
        match_query(pattern.query, concrete.query, bindings)
        return
    if pattern == concrete:
        return
    raise MatchFailure(type(pattern).__name__)


def match_projection(pattern: ast.Projection, concrete: ast.Projection,
                     bindings: Bindings) -> None:
    if isinstance(pattern, ast.PVar):
        bound = bindings.projections.get(pattern.name)
        if bound is None:
            bindings.projections[pattern.name] = concrete
        elif bound != concrete:
            raise MatchFailure(pattern.name)
        return
    if type(pattern) is not type(concrete):
        raise MatchFailure(type(pattern).__name__)
    if isinstance(pattern, ast.Compose):
        match_projection(pattern.first, concrete.first, bindings)
        match_projection(pattern.second, concrete.second, bindings)
        return
    if isinstance(pattern, ast.Duplicate):
        match_projection(pattern.left, concrete.left, bindings)
        match_projection(pattern.right, concrete.right, bindings)
        return
    if pattern == concrete:
        return
    raise MatchFailure(type(pattern).__name__)


# ---------------------------------------------------------------------------
# Substitution into the right-hand side
# ---------------------------------------------------------------------------

def substitute_query(template: ast.Query, bindings: Bindings) -> ast.Query:
    """Instantiate a rule side with matched bindings."""
    if isinstance(template, ast.Table):
        return bindings.tables.get(template.name, template)
    if isinstance(template, ast.Select):
        return ast.Select(
            substitute_projection(template.projection, bindings),
            substitute_query(template.query, bindings))
    if isinstance(template, ast.Product):
        return ast.Product(substitute_query(template.left, bindings),
                           substitute_query(template.right, bindings))
    if isinstance(template, ast.Where):
        return ast.Where(substitute_query(template.query, bindings),
                         substitute_predicate(template.predicate, bindings))
    if isinstance(template, ast.UnionAll):
        return ast.UnionAll(substitute_query(template.left, bindings),
                            substitute_query(template.right, bindings))
    if isinstance(template, ast.Except):
        return ast.Except(substitute_query(template.left, bindings),
                          substitute_query(template.right, bindings))
    if isinstance(template, ast.Distinct):
        return ast.Distinct(substitute_query(template.query, bindings))
    raise TypeError(f"cannot substitute into {template!r}")


def substitute_predicate(template: ast.Predicate,
                         bindings: Bindings) -> ast.Predicate:
    if isinstance(template, ast.PredVar):
        return bindings.predicates.get(template.name, template)
    if isinstance(template, ast.PredAnd):
        return ast.PredAnd(substitute_predicate(template.left, bindings),
                           substitute_predicate(template.right, bindings))
    if isinstance(template, ast.PredOr):
        return ast.PredOr(substitute_predicate(template.left, bindings),
                          substitute_predicate(template.right, bindings))
    if isinstance(template, ast.PredNot):
        return ast.PredNot(substitute_predicate(template.operand, bindings))
    if isinstance(template, ast.Exists):
        return ast.Exists(substitute_query(template.query, bindings))
    if isinstance(template, ast.CastPred):
        return ast.CastPred(
            substitute_projection(template.projection, bindings),
            substitute_predicate(template.predicate, bindings))
    return template


def substitute_projection(template: ast.Projection,
                          bindings: Bindings) -> ast.Projection:
    if isinstance(template, ast.PVar):
        return bindings.projections.get(template.name, template)
    if isinstance(template, ast.Compose):
        return ast.Compose(substitute_projection(template.first, bindings),
                           substitute_projection(template.second, bindings))
    if isinstance(template, ast.Duplicate):
        return ast.Duplicate(substitute_projection(template.left, bindings),
                             substitute_projection(template.right, bindings))
    return template


# ---------------------------------------------------------------------------
# Certified application
# ---------------------------------------------------------------------------

@dataclass
class Application:
    """One certified rule application."""

    rule_name: str
    rewritten: ast.Query
    bindings: Bindings


def _certified(original: ast.Query, rewritten: ast.Query,
               rule: RewriteRule, pipeline=None) -> bool:
    """Prove ``original ≡ rewritten`` through the verification pipeline.

    Routing through the shared pipeline (rather than a bare prover call)
    means every certification feeds the process-wide proof cache:
    re-applying a rule to an already-certified shape is O(1).
    """
    if pipeline is None:
        from ..solver.pipeline import default_pipeline  # deferred: layering
        pipeline = default_pipeline()
    return pipeline.certify(original, rewritten, hyps=rule.hypotheses)


def apply_rule_at_root(rule: RewriteRule, query: ast.Query,
                       certify: bool = True,
                       pipeline=None) -> Optional[Application]:
    """Apply ``rule`` at the root of ``query`` (None if no match).

    When ``certify`` is set (the default), the rewritten query is proved
    equivalent to the original before being returned; an uncertifiable
    match — e.g. a correlated subquery bound to a relation metavariable —
    is rejected.  ``pipeline`` overrides the shared default pipeline.
    """
    bindings = Bindings.empty()
    try:
        match_query(rule.lhs, query, bindings)
    except MatchFailure:
        return None
    rewritten = substitute_query(rule.rhs, bindings)
    if certify and not _certified(query, rewritten, rule, pipeline):
        return None
    return Application(rule_name=rule.name, rewritten=rewritten,
                       bindings=bindings)


def apply_rule_everywhere(rule: RewriteRule, query: ast.Query,
                          certify: bool = True,
                          pipeline=None) -> List[Application]:
    """All certified applications of ``rule`` at any subquery position."""
    out: List[Application] = []
    root = apply_rule_at_root(rule, query, certify, pipeline)
    if root is not None:
        out.append(root)
    for field_name, child in _children(query):
        for app in apply_rule_everywhere(rule, child, certify, pipeline):
            out.append(Application(
                rule_name=app.rule_name,
                rewritten=_rebuild(query, field_name, app.rewritten),
                bindings=app.bindings))
    return out


def _children(query: ast.Query):
    if isinstance(query, (ast.Select, ast.Where, ast.Distinct)):
        yield "query", query.query
    elif isinstance(query, (ast.Product, ast.UnionAll, ast.Except)):
        yield "left", query.left
        yield "right", query.right


def _rebuild(query: ast.Query, field_name: str,
             child: ast.Query) -> ast.Query:
    if isinstance(query, ast.Select):
        return ast.Select(query.projection, child)
    if isinstance(query, ast.Where):
        return ast.Where(child, query.predicate)
    if isinstance(query, ast.Distinct):
        return ast.Distinct(child)
    if isinstance(query, ast.Product):
        return ast.Product(child, query.right) if field_name == "left" \
            else ast.Product(query.left, child)
    if isinstance(query, ast.UnionAll):
        return ast.UnionAll(child, query.right) if field_name == "left" \
            else ast.UnionAll(query.left, child)
    if isinstance(query, ast.Except):
        return ast.Except(child, query.right) if field_name == "left" \
            else ast.Except(query.left, child)
    raise TypeError(f"cannot rebuild {query!r}")


__all__ = [
    "Application",
    "Bindings",
    "apply_rule_at_root",
    "apply_rule_everywhere",
    "match_predicate",
    "match_projection",
    "match_query",
    "substitute_predicate",
    "substitute_projection",
    "substitute_query",
]
