"""Spans: nesting, exception safety, thread isolation, exporters."""

import json
import logging
import threading

import pytest

from repro.obs.trace import (
    TRACER,
    Tracer,
    current_span,
    span,
    trace_to_file,
    traced,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    TRACER.clear()
    TRACER.disable()
    yield
    TRACER.clear()
    TRACER.disable()


# ---------------------------------------------------------------------------
# Nesting and lifecycle
# ---------------------------------------------------------------------------

def test_spans_nest_under_the_open_parent():
    with span("root") as root:
        with span("child-1") as c1:
            with span("grandchild"):
                pass
        with span("child-2"):
            pass
    assert [c.name for c in root.children] == ["child-1", "child-2"]
    assert [c.name for c in c1.children] == ["grandchild"]
    assert all(sp.closed for sp in root.walk())


def test_walk_is_depth_first():
    with span("a") as a:
        with span("b"):
            with span("c"):
                pass
        with span("d"):
            pass
    assert [sp.name for sp in a.walk()] == ["a", "b", "c", "d"]


def test_duration_is_monotone_and_contains_children():
    with span("outer") as outer:
        with span("inner") as inner:
            pass
    assert outer.duration >= inner.duration >= 0.0
    assert outer.start <= inner.start
    assert inner.end <= outer.end


def test_current_span_tracks_the_stack():
    assert current_span() is None
    with span("outer") as outer:
        assert current_span() is outer
        with span("inner") as inner:
            assert current_span() is inner
        assert current_span() is outer
    assert current_span() is None


def test_exception_closes_span_records_error_and_propagates():
    with pytest.raises(ValueError, match="boom"):
        with span("failing") as sp:
            raise ValueError("boom")
    assert sp.closed
    assert sp.error == "ValueError: boom"
    assert current_span() is None  # the stack was popped


def test_exception_in_child_does_not_corrupt_parent():
    with span("parent") as parent:
        with pytest.raises(RuntimeError):
            with span("child"):
                raise RuntimeError("inner")
        assert current_span() is parent
    assert parent.error is None
    assert parent.children[0].error == "RuntimeError: inner"


def test_attrs_are_carried_and_mutable_during_the_span():
    with span("s", tag="x") as sp:
        sp.attrs["late"] = 42
    assert sp.attrs == {"tag": "x", "late": 42}


def test_threads_get_independent_stacks():
    seen = {}

    def worker(name):
        with span(name) as sp:
            seen[name] = current_span() is sp

    with span("main-root") as root:
        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Worker spans never attached to this thread's open root.
        assert root.children == []
    assert all(seen.values())


def test_traced_decorator_bare_and_named():
    @traced
    def plain():
        return current_span().name

    @traced("custom.label", kind="test")
    def named():
        sp = current_span()
        return sp.name, sp.attrs

    assert plain().endswith("plain")
    name, attrs = named()
    assert name == "custom.label"
    assert attrs == {"kind": "test"}


# ---------------------------------------------------------------------------
# Tracer retention
# ---------------------------------------------------------------------------

def test_tracer_records_only_roots_and_only_when_enabled():
    with span("ignored"):
        pass
    assert len(TRACER) == 0

    TRACER.enable()
    with span("root"):
        with span("child"):
            pass
    assert [r.name for r in TRACER.roots] == ["root"]


def test_tracer_retention_is_bounded():
    tracer = Tracer(max_roots=3)
    tracer.enable()
    for i in range(5):
        sp = span(f"r{i}")
        with sp:
            pass
        tracer.record(sp._span)
    assert [r.name for r in tracer.roots] == ["r2", "r3", "r4"]


# ---------------------------------------------------------------------------
# Chrome trace-event exporter (schema validation)
# ---------------------------------------------------------------------------

def _sample_trace():
    TRACER.enable()
    with span("pipeline.check", pair="demo"):
        with span("pipeline.cache", hit=False):
            pass
        with span("pipeline.prover", steps=7):
            pass
    return TRACER.chrome_trace()


def test_chrome_trace_schema():
    trace = _sample_trace()
    assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert [e["name"] for e in events] == [
        "pipeline.check", "pipeline.cache", "pipeline.prover"]
    for event in events:
        assert {"name", "cat", "ph", "ts", "dur", "pid",
                "tid", "args"} <= set(event)
        assert event["ph"] == "X"
        assert event["cat"] == event["name"].split(".", 1)[0]
        assert isinstance(event["ts"], float) and event["ts"] >= 0
        assert isinstance(event["dur"], float) and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
    # Events come out sorted by start time.
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
    # Children fall inside the parent's [ts, ts+dur] window.
    root, child = events[0], events[1]
    assert root["ts"] <= child["ts"]
    assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-3


def test_chrome_trace_args_are_json_safe():
    TRACER.enable()
    with span("s", plain=1, text="x", weird=object()):
        pass
    payload = json.dumps(TRACER.chrome_trace())  # must not raise
    event = json.loads(payload)["traceEvents"][0]
    assert event["args"]["plain"] == 1
    assert event["args"]["text"] == "x"
    assert isinstance(event["args"]["weird"], str)


def test_chrome_trace_error_lands_in_args():
    TRACER.enable()
    with pytest.raises(KeyError):
        with span("failing"):
            raise KeyError("gone")
    event = TRACER.chrome_events()[0]
    assert "KeyError" in event["args"]["error"]


def test_write_chrome_produces_loadable_json(tmp_path):
    _sample_trace()
    path = tmp_path / "trace.json"
    assert TRACER.write_chrome(str(path)) == str(path)
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert len(loaded["traceEvents"]) == 3


def test_trace_to_file_none_is_passthrough():
    with trace_to_file(None) as tracer:
        assert tracer is None
    assert not TRACER.enabled


def test_trace_to_file_scopes_enablement_and_writes(tmp_path):
    path = tmp_path / "out.json"
    with trace_to_file(str(path)):
        assert TRACER.enabled
        with span("inside"):
            pass
    assert not TRACER.enabled
    assert len(TRACER) == 0  # exported and cleared
    with open(path, "r", encoding="utf-8") as handle:
        names = [e["name"] for e in json.load(handle)["traceEvents"]]
    assert names == ["inside"]


def test_render_indents_children():
    TRACER.enable()
    with span("outer"):
        with span("inner"):
            pass
    text = TRACER.render()
    lines = text.splitlines()
    assert lines[0].startswith("outer")
    assert lines[1].startswith("  inner")
    assert "ms" in lines[0]


def test_debug_logging_emits_open_close(caplog):
    with caplog.at_level(logging.DEBUG, logger="repro.trace"):
        with span("logged"):
            pass
    messages = [r.getMessage() for r in caplog.records]
    assert any(m.startswith("open") and "logged" in m for m in messages)
    assert any(m.startswith("close") and "logged" in m for m in messages)
