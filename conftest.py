"""Repo-wide pytest configuration.

Tests marked ``@pytest.mark.slow`` (bounded-exhaustive disprover stress
runs) are skipped by default; opt in with ``--runslow`` or select them
explicitly with ``-m slow``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption("--runslow", action="store_true", default=False,
                     help="run tests marked slow")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    if config.getoption("-m"):
        return  # an explicit marker expression overrides the default skip
    skip_slow = pytest.mark.skip(reason="slow: opt in with --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
