"""Downstream workload: the certified optimizer on the paper's Sec. 5.1.3
motivating query (young employees in big departments).

Not a paper figure per se, but the paper's motivation (Sec. 1) is that
optimizers need verified rules; this benchmark shows the full pipeline —
parse named SQL, plan with certified rewrites, prove the chosen plan
equivalent, and execute both plans to identical results.
"""

from repro.core.schema import INT
from repro.engine import Database, run_query
from repro.optimizer import TableStats, optimize, plan_cost
from repro.sql import Catalog, compile_sql
from repro.semiring import NAT


def _workload():
    cat = Catalog()
    cat.add_table("Emp", [("eid", INT), ("did", INT), ("sal", INT),
                          ("age", INT)])
    cat.add_table("Dept", [("did", INT), ("budget", INT)])
    db = Database(NAT)
    db.create_table("Emp", cat.schema_of("Emp"),
                    [[i, i % 5, 1000 + 13 * i, 22 + (i % 20)]
                     for i in range(40)])
    db.create_table("Dept", cat.schema_of("Dept"),
                    [[d, 50000 + 30000 * d] for d in range(5)])
    query = compile_sql(
        "SELECT e.eid, e.sal FROM Emp e, Dept d "
        "WHERE e.did = d.did AND e.age < 30 AND d.budget > 100000", cat)
    return db, query


def test_optimizer_report(report, benchmark):
    db, resolved = _workload()
    stats = TableStats.from_database(db)
    result = benchmark(lambda: optimize(resolved.query, stats,
                                        max_plans=400))
    interp = db.interpretation()
    before = run_query(resolved.query, interp)
    after = run_query(result.best_plan, interp)

    report.add("Certified optimization of the Sec. 5.1.3 workload")
    report.add("=" * 60)
    report.add("SELECT e.eid, e.sal FROM Emp e, Dept d")
    report.add("WHERE e.did = d.did AND e.age < 30 AND d.budget > 100000")
    report.add("")
    report.add(f"original plan cost : {result.original_cost:10.1f}")
    report.add(f"optimized plan cost: {result.best_cost:10.1f}")
    report.add(f"rewrite chain      : {' → '.join(result.applied_rules)}")
    report.add(f"plans explored     : {result.plans_explored}")
    report.add(f"prover certificate : "
               f"{'VERIFIED' if result.certified else 'FAILED'}")
    report.add(f"results identical  : {before == after}")
    report.emit("optimizer_workload")

    assert result.improved
    assert result.certified
    assert before == after


def test_optimizer_plan_cost_monotonicity(benchmark):
    db, resolved = _workload()
    stats = TableStats.from_database(db)
    result = benchmark(lambda: optimize(resolved.query, stats,
                                        max_plans=150))
    assert plan_cost(result.best_plan, stats) <= \
        plan_cost(resolved.query, stats)
