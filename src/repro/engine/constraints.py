"""Integrity constraints on concrete instances (paper Sec. 4.2).

The paper encodes keys, functional dependencies, and indexes *inside*
HoTTSQL: a key is a self-join equation, an FD reduces to a key of a
projection, and an index is a query (``SELECT k, a FROM R``).  This module
provides the concrete counterparts used by the oracle and the examples:

* checking whether an instance satisfies a key / FD,
* building the index relation for an instance,
* the HoTTSQL *queries* expressing the paper's definitions, so tests can
  confirm the semantic characterizations (e.g. ``key k R`` holds iff R
  equals its de-duplicated self-join on k).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..core import ast
from ..semiring.krelation import KRelation


def satisfies_key(rel: KRelation, key_fn: Callable[[Any], Any]) -> bool:
    """Does ``key_fn`` assign distinct values to distinct rows, each once?

    Per the paper's semantic definition, a key forces the relation to be
    set-valued (every multiplicity ≤ 1) *and* key values to be unique.
    """
    seen: Dict[Any, Any] = {}
    for row, annot in rel.items():
        count = annot if isinstance(annot, int) else (1 if annot else 0)
        if count > 1:
            return False
        value = key_fn(row)
        if value in seen and seen[value] != row:
            return False
        seen[value] = row
    return True


def satisfies_fd(rel: KRelation, source_fn: Callable[[Any], Any],
                 target_fn: Callable[[Any], Any]) -> bool:
    """Does ``source → target`` hold on the instance?"""
    mapping: Dict[Any, Any] = {}
    for row, _ in rel.items():
        src = source_fn(row)
        tgt = target_fn(row)
        if src in mapping and mapping[src] != tgt:
            return False
        mapping[src] = tgt
    return True


def build_index(rel: KRelation, key_fn: Callable[[Any], Any],
                attr_fn: Callable[[Any], Any]) -> KRelation:
    """The index relation ``SELECT k, a FROM R`` (paper Sec. 4.2).

    An index is a *logical relation* pairing each row's key with its
    indexed attribute (Tsatalos et al., VLDB 1994).
    """
    out = KRelation(rel.semiring)
    for row, annot in rel.items():
        out.add((key_fn(row), attr_fn(row)), annot)
    return out


def key_characterization_queries(table: ast.Table, key: ast.Projection,
                                 key_ty) -> tuple:
    """The two sides of the paper's semantic key definition.

    ``key k R`` holds iff ``SELECT * FROM R`` equals
    ``SELECT Left.* FROM R, R WHERE k(Right.Left) = k(Right.Right)``.
    Returns the two queries; tests evaluate both on instances.
    """
    self_join = ast.Select(
        ast.Compose(ast.RIGHT, ast.LEFT),
        ast.Where(
            ast.Product(table, table),
            ast.PredEq(
                ast.P2E(ast.path(ast.RIGHT, ast.LEFT, key), key_ty),
                ast.P2E(ast.path(ast.RIGHT, ast.RIGHT, key), key_ty))))
    plain = ast.Select(ast.RIGHT, table)
    return plain, self_join


def index_query(table: ast.Table, key: ast.Projection, key_ty,
                attr: ast.Projection, attr_ty) -> ast.Query:
    """The HoTTSQL definition of an index: ``SELECT k, a FROM R``."""
    return ast.Select(
        ast.Duplicate(ast.Compose(ast.RIGHT, key), ast.Compose(ast.RIGHT, attr)),
        table)
