"""One ``except ReproError`` catches any library failure."""

import pytest

from repro import ReproError, Session
from repro.cli import CLIError
from repro.core.conjunctive import NotConjunctive
from repro.core.equivalence import StepBudgetExceeded
from repro.core.interp import InterpretationError
from repro.core.typecheck import TypecheckError
from repro.errors import SchemaMismatchError
from repro.session import SessionError, TableSpecError
from repro.sql.decompile import PlanRenderingError
from repro.sql.lexer import LexError
from repro.sql.parser import ParseError
from repro.sql.resolve import ResolutionError


ALL_ERRORS = [
    CLIError,
    InterpretationError,
    LexError,
    NotConjunctive,
    ParseError,
    PlanRenderingError,
    ResolutionError,
    SchemaMismatchError,
    SessionError,
    StepBudgetExceeded,
    TableSpecError,
    TypecheckError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS, ids=lambda e: e.__name__)
def test_every_exception_roots_at_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_existing_hierarchies_intact():
    # Sub-hierarchies keep their local structure under the common root.
    assert issubclass(TableSpecError, SessionError)
    assert issubclass(ReproError, Exception)
    # Schema mismatches stay catchable as ValueError (pre-PR behaviour).
    assert issubclass(SchemaMismatchError, ValueError)


def test_errors_module_re_exports():
    import repro.errors as errors
    assert errors.ParseError is ParseError
    assert errors.LexError is LexError
    assert errors.StepBudgetExceeded is StepBudgetExceeded
    assert errors.CLIError is CLIError
    with pytest.raises(AttributeError):
        errors.NoSuchError

    for name in errors.__all__:
        assert isinstance(getattr(errors, name), type)


def test_one_handler_catches_frontend_failures():
    with Session.from_tables("R(a:int,b:int)") as session:
        for bad in ["SELECT $$$ FROM R",       # lexer
                    "SELECT FROM",             # parser
                    "SELECT nope FROM R"]:     # resolver
            with pytest.raises(ReproError):
                session.sql(bad)
