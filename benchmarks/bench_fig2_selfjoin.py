"""Figure 2 — the Q2 ≡ Q3 redundant self-join proof.

Regenerates both of the paper's proofs of the same equivalence: the
*equational* route (normalization with the semiring identities) and the
*deductive* route (squash bi-implication discharged by witness search),
plus the fully automatic conjunctive-query decision.
"""

from repro.core.conjunctive import decide_cq
from repro.core.denote import denote_closed
from repro.core.equivalence import check_query_equivalence
from repro.rules.conjunctive import self_join_queries
from repro.sql.pretty import denotation_to_str


def test_figure2_report(report, benchmark):
    q3, q2 = self_join_queries()
    decision = benchmark(lambda: decide_cq(q3, q2))
    assert decision.equivalent

    generic = check_query_equivalence(q3, q2)
    assert generic.equal

    report.add("Figure 2 — The proof of equivalence Q2 ≡ Q3")
    report.add("=" * 60)
    report.add("Q3: SELECT DISTINCT x.p FROM R x, R y WHERE x.p = y.p")
    report.add("Q2: SELECT DISTINCT p FROM R")
    report.add("")
    report.add("Denotations:")
    report.add(f"  Q3: {denotation_to_str(denote_closed(q3))}")
    report.add(f"  Q2: {denotation_to_str(denote_closed(q2))}")
    report.add("")
    report.add("Equational proof (semiring identities + squash laws): "
               f"VERIFIED in {generic.stats.total_steps} engine steps")
    report.add("Deductive proof (bi-implication, witness instantiation):")
    report.add(f"  → direction: witness {decision.forward.render()}")
    report.add(f"  ← direction: witness {decision.backward.render()}")
    report.add("Automatic CQ decision procedure: 1 step (the paper's "
               "one-line proof)")
    report.emit("fig2_selfjoin")


def test_figure2_bag_version_rejected(benchmark):
    # Dropping DISTINCT breaks the rule: multiplicities square.
    from repro.rules import get_rule
    rule = get_rule("bad_self_join_dedup_bag")
    proof = benchmark(rule.prove)
    assert not proof.verified
