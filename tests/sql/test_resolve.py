"""Name resolution: named SQL → unnamed HoTTSQL, evaluated and proved."""

import pytest

from repro.core.equivalence import queries_equivalent
from repro.core.schema import INT, Leaf, Node, STRING
from repro.core.typecheck import well_formed_query
from repro.engine import Database, run_query
from repro.semiring import NAT
from repro.sql import Catalog, ResolutionError, compile_sql
from repro.sql.resolve import column_steps, columns_to_schema


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    cat.add_table("S", [("a", INT), ("c", INT)])
    cat.add_table("Emp", [("eid", INT), ("did", INT), ("sal", INT)])
    return cat


@pytest.fixture
def db(catalog):
    database = Database(NAT)
    database.create_table("R", catalog.schema_of("R"),
                          [[1, 40], [2, 40], [2, 50]])
    database.create_table("S", catalog.schema_of("S"), [[1, 7], [3, 9]])
    database.create_table("Emp", catalog.schema_of("Emp"),
                          [[1, 0, 100], [2, 0, 200], [3, 1, 150]])
    return database


def rows(query, db):
    return dict(run_query(query, db.interpretation()).items())


class TestSchemaLayout:
    def test_columns_to_schema_right_nested(self):
        schema = columns_to_schema([("a", INT), ("b", INT), ("c", STRING)])
        assert schema == Node(Leaf(INT), Node(Leaf(INT), Leaf(STRING)))

    def test_column_steps(self):
        assert column_steps(1, 0) == ()
        assert column_steps(3, 0) == ("L",)
        assert column_steps(3, 1) == ("R", "L")
        assert column_steps(3, 2) == ("R", "R")
        with pytest.raises(ResolutionError):
            column_steps(3, 3)


class TestBasicResolution:
    def test_select_star_is_table(self, catalog, db):
        r = compile_sql("SELECT * FROM R", catalog)
        assert rows(r.query, db) == {(1, 40): 1, (2, 40): 1, (2, 50): 1}

    def test_single_column(self, catalog, db):
        r = compile_sql("SELECT a FROM R", catalog)
        assert rows(r.query, db) == {1: 1, 2: 2}
        assert r.schema == Leaf(INT)
        assert r.columns == (("a", INT),)

    def test_column_order(self, catalog, db):
        r = compile_sql("SELECT b, a FROM R", catalog)
        assert (40, 1) in rows(r.query, db)

    def test_qualified_and_bare_columns(self, catalog, db):
        r1 = compile_sql("SELECT R.a FROM R", catalog)
        r2 = compile_sql("SELECT a FROM R", catalog)
        assert rows(r1.query, db) == rows(r2.query, db)

    def test_all_queries_typecheck(self, catalog):
        sources = [
            "SELECT * FROM R",
            "SELECT a, b FROM R",
            "SELECT x.a FROM R x, S y WHERE x.a = y.a",
            "SELECT DISTINCT a FROM R UNION ALL SELECT a FROM S",
            "SELECT a FROM R WHERE EXISTS (SELECT * FROM S WHERE S.a = R.a)",
            "SELECT a, SUM(b) FROM R GROUP BY a",
        ]
        for source in sources:
            resolved = compile_sql(source, catalog)
            assert well_formed_query(resolved.query) == resolved.schema


class TestJoinsAndScopes:
    def test_join_with_aliases(self, catalog, db):
        r = compile_sql(
            "SELECT x.a, y.c FROM R x, S y WHERE x.a = y.a", catalog)
        assert rows(r.query, db) == {(1, 7): 1}

    def test_self_join(self, catalog, db):
        r = compile_sql(
            "SELECT x.a FROM R x, R y WHERE x.b = y.b", catalog)
        # (1,40)-(1,40), (1,40)-(2,40), (2,40)-(1,40), (2,40)-(2,40),
        # (2,50)-(2,50)
        assert rows(r.query, db) == {1: 2, 2: 3}

    def test_ambiguous_bare_column_rejected(self, catalog):
        with pytest.raises(ResolutionError):
            compile_sql("SELECT a FROM R x, S y", catalog)

    def test_duplicate_alias_rejected(self, catalog):
        with pytest.raises(ResolutionError):
            compile_sql("SELECT * FROM R x, S x", catalog)

    def test_unknown_column_rejected(self, catalog):
        with pytest.raises(ResolutionError):
            compile_sql("SELECT zzz FROM R", catalog)

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(ResolutionError):
            compile_sql("SELECT a FROM Nope", catalog)

    def test_correlated_exists(self, catalog, db):
        r = compile_sql(
            "SELECT b FROM R WHERE EXISTS "
            "(SELECT * FROM S WHERE S.a = R.a)", catalog)
        assert rows(r.query, db) == {40: 1}

    def test_from_subquery(self, catalog, db):
        r = compile_sql(
            "SELECT v.a FROM (SELECT a FROM R WHERE b = 40) AS v", catalog)
        assert rows(r.query, db) == {1: 1, 2: 1}

    def test_comparison_type_mismatch(self, catalog):
        with pytest.raises(ResolutionError):
            compile_sql("SELECT a FROM R WHERE a = 'x'", catalog)


class TestCompoundAndGroupBy:
    def test_union_all(self, catalog, db):
        r = compile_sql("SELECT a FROM R UNION ALL SELECT a FROM S", catalog)
        assert rows(r.query, db) == {1: 2, 2: 2, 3: 1}

    def test_union_schema_mismatch(self, catalog):
        with pytest.raises(ResolutionError):
            compile_sql("SELECT a FROM R UNION ALL SELECT a, c FROM S",
                        catalog)

    def test_except(self, catalog, db):
        r = compile_sql("SELECT a FROM R EXCEPT SELECT a FROM S", catalog)
        assert rows(r.query, db) == {2: 2}

    def test_group_by_sum(self, catalog, db):
        r = compile_sql("SELECT did, SUM(sal) FROM Emp GROUP BY did",
                        catalog)
        assert rows(r.query, db) == {(0, 300): 1, (1, 150): 1}

    def test_group_by_count_with_where(self, catalog, db):
        r = compile_sql(
            "SELECT did, COUNT(sal) FROM Emp WHERE sal > 120 GROUP BY did",
            catalog)
        assert rows(r.query, db) == {(0, 1): 1, (1, 1): 1}

    def test_group_by_non_key_item_rejected(self, catalog):
        with pytest.raises(ResolutionError):
            compile_sql("SELECT sal, SUM(eid) FROM Emp GROUP BY did",
                        catalog)

    def test_scalar_aggregate_resolves(self, catalog, db):
        # Ungrouped aggregates are single-group aggregation (Sec. 4.2
        # with the whole table as the one group).
        r = compile_sql("SELECT SUM(sal) FROM Emp", catalog)
        assert rows(r.query, db) == {450: 1}

    def test_scalar_aggregate_mixed_items_rejected(self, catalog):
        with pytest.raises(ResolutionError):
            compile_sql("SELECT sal, SUM(sal) FROM Emp", catalog)

    def test_nested_aggregate_rejected(self, catalog):
        with pytest.raises(ResolutionError):
            compile_sql("SELECT SUM(sal) + 1 FROM Emp", catalog)


class TestEndToEndProofs:
    """The paper's Sec. 2 example, straight from SQL text to a proof."""

    def test_q2_equiv_q3_from_sql(self, catalog):
        q2 = compile_sql("SELECT DISTINCT a FROM R", catalog)
        q3 = compile_sql(
            "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a",
            catalog)
        assert queries_equivalent(q2.query, q3.query)

    def test_inequivalent_from_sql(self, catalog):
        q1 = compile_sql("SELECT DISTINCT a FROM R", catalog)
        q2 = compile_sql("SELECT DISTINCT b FROM R", catalog)
        assert not queries_equivalent(q1.query, q2.query)

    def test_figure_1_from_sql(self, catalog):
        lhs = compile_sql(
            "SELECT * FROM (SELECT * FROM R UNION ALL SELECT * FROM R) "
            "AS u WHERE u.a = 1", catalog)
        rhs = compile_sql(
            "(SELECT * FROM R WHERE a = 1) UNION ALL "
            "(SELECT * FROM R WHERE a = 1)", catalog)
        assert queries_equivalent(lhs.query, rhs.query)
