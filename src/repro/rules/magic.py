"""Magic-set rewrite rules (paper Sec. 5.1.3, Figure 8 row "Magic Set": 7).

Magic set rewrites push "filters" derived from one part of a query into
another via θ-semijoins.  As described in Seshadri et al. (SIGMOD 1996),
every magic set rewrite is composed from three primitive rules:
introduction of a θ-semijoin, pushing a θ-semijoin through a join, and
pushing a θ-semijoin through aggregation.  We prove those three plus four
supporting semijoin laws optimizers use alongside them.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..core import ast
from ..core.schema import EMPTY, INT, Leaf, Node, SVar
from .common import (
    attr_expr,
    groupby_agg,
    semijoin,
    semijoin_on,
    standard_interpretation,
    table,
)
from .rule import RewriteRule

_S1 = SVar("s1")
_S2 = SVar("s2")
_S3 = SVar("s3")


def _theta(name: str, left: SVar, right: SVar) -> ast.PredVar:
    """A join predicate metavariable over a pair of tuple schemas."""
    return ast.PredVar(name, Node(left, right))


def _semijoin_intro() -> RewriteRule:
    # R2 ⋈θ R1  ≡  (R2 ⋉θ R1) ⋈θ R1      (paper Sec. 5.1.3, rule 1)
    r1 = table("R1", _S1)
    r2 = table("R2", _S2)
    theta = _theta("theta", _S2, _S1)
    join = ast.Where(ast.Product(r2, r1), ast.CastPred(ast.RIGHT, theta))
    semi = semijoin(r2, r1, theta)
    rhs = ast.Where(ast.Product(semi, r1), ast.CastPred(ast.RIGHT, theta))
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R1", "R2"), preds=("theta",))
        return join, rhs, interp
    return RewriteRule(
        name="semijoin_intro", category="magic",
        description="Introduction of θ-semijoin: R2 ⋈θ R1 ≡ (R2 ⋉θ R1) ⋈θ "
                    "R1; the semijoin's EXISTS is witnessed by the joined "
                    "R1 row (Lemma 5.3).",
        lhs=join, rhs=rhs,
        tactic_script=("extensionality", "absorb_lemma_5_3",
                       "instantiate_witness"),
        paper_ref="Sec. 5.1.3",
        instantiate=factory)


def _semijoin_push_join() -> RewriteRule:
    # (R1 ⋈θ1 R2) ⋉θ2 R3  ≡  (R1 ⋈θ1 R2') ⋉θ2 R3
    # where R2' = R2 ⋉_{θ1∧θ2} (R1 × R3)     (paper Sec. 5.1.3, rule 2)
    r1 = table("R1", _S1)
    r2 = table("R2", _S2)
    r3 = table("R3", _S3)
    theta1 = _theta("theta1", _S1, _S2)
    theta2 = _theta("theta2", Node(_S1, _S2), _S3)

    join12 = ast.Where(ast.Product(r1, r2), ast.CastPred(ast.RIGHT, theta1))
    lhs = semijoin(join12, r3, theta2)

    # R2' — semijoin of R2 against R1 × R3 on θ1 ∧ θ2, with the casts
    # selecting (r1, r2) for θ1 and ((r1, r2), r3) for θ2.
    tup_r2 = ast.path(ast.LEFT, ast.RIGHT)
    tup_r1 = ast.path(ast.RIGHT, ast.LEFT)
    tup_r3 = ast.path(ast.RIGHT, ast.RIGHT)
    pred = ast.PredAnd(
        ast.CastPred(ast.Duplicate(tup_r1, tup_r2), theta1),
        ast.CastPred(ast.Duplicate(ast.Duplicate(tup_r1, tup_r2), tup_r3),
                     theta2))
    r2_reduced = ast.Where(
        r2, ast.Exists(ast.Where(ast.Product(r1, r3), pred)))
    join12_reduced = ast.Where(ast.Product(r1, r2_reduced),
                               ast.CastPred(ast.RIGHT, theta1))
    rhs = semijoin(join12_reduced, r3, theta2)
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R1", "R2", "R3"),
                                         preds=("theta1", "theta2"))
        return lhs, rhs, interp
    return RewriteRule(
        name="semijoin_push_join", category="magic",
        description="Pushing θ-semijoin through join; the inner EXISTS is "
                    "witnessed by the pair (t.1, t1) built from available "
                    "tuples (paper Sec. 5.1.3, rule 2).",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "absorb_lemma_5_3",
                       "instantiate_witness_pair"),
        paper_ref="Sec. 5.1.3",
        instantiate=factory)


def _semijoin_push_agg() -> RewriteRule:
    # F_{c1,count a}(R1) ⋉_{c1=c2} R2  ≡  F_{c1,count a}(R1 ⋉_{c1=c2} R2)
    # (paper Sec. 5.1.3, rule 3 — proof omitted in the paper)
    r1 = table("R1", _S1)
    r2 = table("R2", _S2)
    c1 = ast.PVar("c1", _S1, Leaf(INT))
    a = ast.PVar("a", _S1, Leaf(INT))
    c2 = ast.PVar("c2", _S2, Leaf(INT))

    grouped = groupby_agg(r1, c1, a, "COUNT")
    # Semijoin condition on the *group* tuple: its key column equals c2.
    group_pred = ast.PredEq(attr_expr(ast.LEFT, ast.LEFT),
                            attr_expr(ast.RIGHT, c2))
    lhs = semijoin_on(grouped, r2, group_pred)

    row_pred = ast.PredEq(ast.P2E(ast.Compose(ast.LEFT, c1), INT),
                          attr_expr(ast.RIGHT, c2))
    reduced = semijoin_on(r1, r2, row_pred)
    rhs = groupby_agg(reduced, c1, a, "COUNT")
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R1", "R2"),
                                         attrs=("c1", "a", "c2"))
        return lhs, rhs, interp
    return RewriteRule(
        name="semijoin_push_agg", category="magic",
        description="Pushing θ-semijoin through grouping/aggregation "
                    "(paper Sec. 5.1.3, rule 3; proof omitted there).",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "squash_biimpl", "agg_congruence",
                       "absorb_lemma_5_3", "instantiate_witness"),
        paper_ref="Sec. 5.1.3",
        instantiate=factory)


def _semijoin_idem() -> RewriteRule:
    r = table("R", _S1)
    s = table("S", _S2)
    theta = _theta("theta", _S1, _S2)
    once = semijoin(r, s, theta)
    twice = semijoin(once, s, theta)
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R", "S"), preds=("theta",))
        return twice, once, interp
    return RewriteRule(
        name="semijoin_idem", category="magic",
        description="θ-semijoin is idempotent: duplicate EXISTS guards "
                    "collapse (‖P‖ × ‖P‖ = ‖P‖).",
        lhs=twice, rhs=once,
        tactic_script=("extensionality", "squash_dedup"),
        instantiate=factory)


def _semijoin_sel_comm() -> RewriteRule:
    r = table("R", _S1)
    s = table("S", _S2)
    theta = _theta("theta", _S1, _S2)
    b = ast.PredVar("b", Node(EMPTY, _S1))
    lhs = ast.Where(semijoin(r, s, theta), b)
    rhs = semijoin(ast.Where(r, b), s, theta)
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R", "S"),
                                         preds=("theta", "b"))
        return lhs, rhs, interp
    return RewriteRule(
        name="semijoin_sel_comm", category="magic",
        description="θ-semijoin commutes with selection on the probe side.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "mul_comm"),
        instantiate=factory)


def _semijoin_union_distr() -> RewriteRule:
    r = table("R", _S1)
    r_prime = table("Rp", _S1)
    s = table("S", _S2)
    theta = _theta("theta", _S1, _S2)
    lhs = semijoin(ast.UnionAll(r, r_prime), s, theta)
    rhs = ast.UnionAll(semijoin(r, s, theta), semijoin(r_prime, s, theta))
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R", "Rp", "S"),
                                         preds=("theta",))
        return lhs, rhs, interp
    return RewriteRule(
        name="semijoin_union_distr", category="magic",
        description="θ-semijoin distributes over UNION ALL.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "distribute_mul_over_add"),
        instantiate=factory)


def _semijoin_comm() -> RewriteRule:
    r = table("R", _S1)
    s = table("S", _S2)
    t = table("T", _S3)
    theta1 = _theta("theta1", _S1, _S2)
    theta2 = _theta("theta2", _S1, _S3)
    lhs = semijoin(semijoin(r, s, theta1), t, theta2)
    rhs = semijoin(semijoin(r, t, theta2), s, theta1)
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R", "S", "T"),
                                         preds=("theta1", "theta2"))
        return lhs, rhs, interp
    return RewriteRule(
        name="semijoin_comm", category="magic",
        description="Independent θ-semijoins commute.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "mul_comm"),
        instantiate=factory)


def magic_rules() -> Tuple[RewriteRule, ...]:
    """The seven magic-set rules of Figure 8."""
    return (
        _semijoin_intro(),
        _semijoin_push_join(),
        _semijoin_push_agg(),
        _semijoin_idem(),
        _semijoin_sel_comm(),
        _semijoin_union_distr(),
        _semijoin_comm(),
    )
