"""Bounded-exhaustive disprover: Cosette-style counterexample search.

Random testing (:mod:`repro.engine.random_instances`) gives *evidence*;
this module gives *guarantees*.  It systematically enumerates **every**
database instance in which each table holds at most ``max_rows`` distinct
tuples over a small finite domain, each with multiplicity at most
``max_multiplicity``, evaluates both queries under the paper's semiring
semantics, and reports the first disagreement.  When the enumeration
completes without one, the result is a quantified negative: *no
counterexample exists up to the bound* — the small-model half of Cosette's
prove-or-disprove loop.

Two entry points:

* :func:`disprove` — for closed queries over concrete table schemas
  (everything the SQL frontend produces),
* :func:`disprove_rule` — for generic rewrite rules: the rule's own
  instantiator fixes the metavariables (attribute paths, predicates), and
  the table contents are then enumerated exhaustively instead of sampled.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..analysis.infer import (AnalysisContext, EMPTY_CONTEXT,
                              infer_properties, supports_determined)
from ..core import ast
from ..core.equivalence import Hypotheses
from ..core.schema import Schema, enumerate_tuples, tuple_flatten, tuple_of
from ..engine.database import Interpretation
from ..engine.eval import run_query
from ..engine.random_instances import Counterexample
from ..obs.metrics import counter
from ..semiring.krelation import KRelation
from ..semiring.semirings import NAT, Semiring
from .verdict import BoundInfo, CounterexampleRecord

#: Domains intentionally smaller than the random falsifier's defaults: the
#: instance count is exponential in |domain|, and two distinguishable
#: values per type already separate every rewrite in the corpus.
SMALL_DOMAINS: Dict[str, Tuple[Any, ...]] = {
    "int": (0, 1),
    "bool": (False, True),
    "string": ("a", "b"),
    "float": (0.0, 1.0),
}


@dataclass(frozen=True)
class Bound:
    """The instance space to exhaust, hashable and picklable."""

    max_rows: int = 2
    max_multiplicity: int = 2
    domains: Tuple[Tuple[str, Tuple[Any, ...]], ...] = tuple(
        sorted(SMALL_DOMAINS.items()))

    @staticmethod
    def of(max_rows: int = 2, max_multiplicity: int = 2,
           domains: Optional[Dict[str, Tuple[Any, ...]]] = None) -> "Bound":
        return Bound(max_rows, max_multiplicity,
                     tuple(sorted((domains or SMALL_DOMAINS).items())))

    def domain_dict(self) -> Dict[str, Tuple[Any, ...]]:
        return dict(self.domains)

    def info(self, instances_checked: int, exhausted: bool) -> BoundInfo:
        return BoundInfo(max_rows=self.max_rows,
                         max_multiplicity=self.max_multiplicity,
                         domains=self.domains,
                         instances_checked=instances_checked,
                         exhausted=exhausted)


@dataclass
class DisproofResult:
    """Outcome of a bounded-exhaustive search."""

    counterexample: Optional[Counterexample]
    record: Optional[CounterexampleRecord]
    bound: Bound
    instances_checked: int
    exhausted: bool

    @property
    def found(self) -> bool:
        return self.counterexample is not None

    def info(self) -> BoundInfo:
        return self.bound.info(self.instances_checked, self.exhausted)


# ---------------------------------------------------------------------------
# Query analysis: what would we have to enumerate?
# ---------------------------------------------------------------------------

def free_tables(query: ast.Query) -> Dict[str, Schema]:
    """All base tables of a query, name → schema (conflicts are errors)."""
    out: Dict[str, Schema] = {}
    for node in _walk_queries(query):
        if isinstance(node, ast.Table):
            known = out.get(node.name)
            if known is not None and known != node.schema:
                raise ValueError(
                    f"table {node.name!r} used at two schemas: "
                    f"{known} vs {node.schema}")
            out[node.name] = node.schema
    return out


def has_metavariables(query: ast.Query) -> bool:
    """True when the query quantifies over schemas/predicates/attributes.

    Such queries describe *families* of concrete queries; they cannot be
    enumerated directly and need an instantiator (see
    :func:`disprove_rule`).
    """
    for node in _walk_queries(query):
        if isinstance(node, ast.Table) and not node.schema.is_concrete:
            return True
    for pred in _walk_predicates(query):
        if isinstance(pred, ast.PredVar):
            return True
    for expr in _walk_expressions(query):
        if isinstance(expr, ast.ExprVar):
            return True
    for proj in _walk_projections(query):
        if isinstance(proj, ast.PVar):
            return True
    return False


def _walk_queries(query: ast.Query) -> Iterator[ast.Query]:
    yield query
    if isinstance(query, (ast.Select, ast.Where, ast.Distinct)):
        yield from _walk_queries(query.query)
    elif isinstance(query, (ast.Product, ast.UnionAll, ast.Except)):
        yield from _walk_queries(query.left)
        yield from _walk_queries(query.right)
    if isinstance(query, ast.Where):
        for sub in _predicate_subqueries(query.predicate):
            yield from _walk_queries(sub)
    if isinstance(query, ast.Select):
        for sub in _projection_subqueries(query.projection):
            yield from _walk_queries(sub)


def _predicate_subqueries(pred: ast.Predicate) -> Iterator[ast.Query]:
    if isinstance(pred, (ast.PredAnd, ast.PredOr)):
        yield from _predicate_subqueries(pred.left)
        yield from _predicate_subqueries(pred.right)
    elif isinstance(pred, ast.PredNot):
        yield from _predicate_subqueries(pred.operand)
    elif isinstance(pred, ast.Exists):
        yield pred.query
    elif isinstance(pred, ast.CastPred):
        yield from _predicate_subqueries(pred.predicate)
    elif isinstance(pred, (ast.PredEq, ast.PredFunc)):
        for expr in _pred_expressions(pred):
            yield from _expression_subqueries(expr)


def _pred_expressions(pred: ast.Predicate) -> Iterator[ast.Expression]:
    if isinstance(pred, ast.PredEq):
        yield pred.left
        yield pred.right
    elif isinstance(pred, ast.PredFunc):
        yield from pred.args


def _expression_subqueries(expr: ast.Expression) -> Iterator[ast.Query]:
    if isinstance(expr, ast.Agg):
        yield expr.query
    elif isinstance(expr, ast.Func):
        for arg in expr.args:
            yield from _expression_subqueries(arg)
    elif isinstance(expr, ast.CastExpr):
        yield from _expression_subqueries(expr.expression)
    elif isinstance(expr, ast.P2E):
        yield from _projection_subqueries(expr.projection)


def _projection_subqueries(proj: ast.Projection) -> Iterator[ast.Query]:
    if isinstance(proj, ast.Compose):
        yield from _projection_subqueries(proj.first)
        yield from _projection_subqueries(proj.second)
    elif isinstance(proj, ast.Duplicate):
        yield from _projection_subqueries(proj.left)
        yield from _projection_subqueries(proj.right)
    elif isinstance(proj, ast.E2P):
        yield from _expression_subqueries(proj.expression)


def _walk_predicates(query: ast.Query) -> Iterator[ast.Predicate]:
    for node in _walk_queries(query):
        if isinstance(node, ast.Where):
            yield from _all_predicates(node.predicate)


def _all_predicates(pred: ast.Predicate) -> Iterator[ast.Predicate]:
    yield pred
    if isinstance(pred, (ast.PredAnd, ast.PredOr)):
        yield from _all_predicates(pred.left)
        yield from _all_predicates(pred.right)
    elif isinstance(pred, ast.PredNot):
        yield from _all_predicates(pred.operand)
    elif isinstance(pred, ast.CastPred):
        yield from _all_predicates(pred.predicate)


def _walk_expressions(query: ast.Query) -> Iterator[ast.Expression]:
    for node in _walk_queries(query):
        if isinstance(node, ast.Where):
            for pred in _all_predicates(node.predicate):
                for expr in _pred_expressions(pred):
                    yield from _all_expressions(expr)
        if isinstance(node, ast.Select):
            for expr in _projection_expressions(node.projection):
                yield from _all_expressions(expr)


def _all_expressions(expr: ast.Expression) -> Iterator[ast.Expression]:
    yield expr
    if isinstance(expr, ast.Func):
        for arg in expr.args:
            yield from _all_expressions(arg)
    elif isinstance(expr, ast.CastExpr):
        yield from _all_expressions(expr.expression)


def _projection_expressions(proj: ast.Projection) -> Iterator[ast.Expression]:
    if isinstance(proj, ast.Compose):
        yield from _projection_expressions(proj.first)
        yield from _projection_expressions(proj.second)
    elif isinstance(proj, ast.Duplicate):
        yield from _projection_expressions(proj.left)
        yield from _projection_expressions(proj.right)
    elif isinstance(proj, ast.E2P):
        yield proj.expression


def _walk_projections(query: ast.Query) -> Iterator[ast.Projection]:
    for node in _walk_queries(query):
        if isinstance(node, ast.Select):
            yield from _all_projections(node.projection)
        if isinstance(node, ast.Where):
            for pred in _all_predicates(node.predicate):
                if isinstance(pred, ast.CastPred):
                    yield from _all_projections(pred.projection)
                for expr in _pred_expressions(pred):
                    for sub in _all_expressions(expr):
                        if isinstance(sub, ast.P2E):
                            yield from _all_projections(sub.projection)


def _all_projections(proj: ast.Projection) -> Iterator[ast.Projection]:
    yield proj
    if isinstance(proj, ast.Compose):
        yield from _all_projections(proj.first)
        yield from _all_projections(proj.second)
    elif isinstance(proj, ast.Duplicate):
        yield from _all_projections(proj.left)
        yield from _all_projections(proj.right)


# ---------------------------------------------------------------------------
# Instance enumeration
# ---------------------------------------------------------------------------

def enumerate_relations(schema: Schema, bound: Bound,
                        semiring: Semiring = NAT) -> Iterator[KRelation]:
    """Every K-relation over ``schema`` within ``bound``, smallest first.

    Supports are subsets (no permutations) of the tuple space; every
    support row independently takes each multiplicity in
    ``1..max_multiplicity``.
    """
    tuples = list(enumerate_tuples(schema, bound.domain_dict()))
    mults = range(1, bound.max_multiplicity + 1)
    for size in range(0, bound.max_rows + 1):
        for support in itertools.combinations(tuples, size):
            for assignment in itertools.product(mults, repeat=size):
                rel = KRelation(semiring)
                for row, mult in zip(support, assignment):
                    rel.add(row, semiring.from_int(mult))
                yield rel


def count_relations(schema: Schema, bound: Bound) -> int:
    """Size of :func:`enumerate_relations`'s space (sanity/reporting)."""
    n = len(list(enumerate_tuples(schema, bound.domain_dict())))
    m = bound.max_multiplicity
    total = 0
    for size in range(0, bound.max_rows + 1):
        total += _choose(n, size) * (m ** size)
    return total


def _choose(n: int, k: int) -> int:
    if k > n:
        return 0
    out = 1
    for i in range(k):
        out = out * (n - i) // (i + 1)
    return out


# ---------------------------------------------------------------------------
# The disprover proper
# ---------------------------------------------------------------------------

def disprove(q1: ast.Query, q2: ast.Query,
             tables: Optional[Dict[str, Schema]] = None,
             bound: Bound = Bound(),
             semiring: Semiring = NAT,
             base_interp: Optional[Interpretation] = None,
             max_instances: Optional[int] = None,
             hyps: Optional[Hypotheses] = None,
             analyze: bool = True) -> DisproofResult:
    """Exhaust all instances within ``bound`` looking for a disagreement.

    Args:
        q1, q2: the two (closed) queries.
        tables: name → concrete schema of the relations to enumerate;
            inferred from the queries when omitted.
        bound: the instance space (rows × multiplicities × domains).
        semiring: the multiplicity semiring to evaluate under.
        base_interp: an interpretation providing metavariable bindings
            (predicates, projections, ...); its *relations* are replaced
            by the enumeration.
        max_instances: optional safety valve; when hit, the result is
            marked non-exhausted.
        hyps: integrity constraints the rewrite assumes; enumerated
            instances that violate them are not counterexamples and are
            skipped.  When a constraint cannot be evaluated concretely
            (its key projection is not bound in ``base_interp``) the
            search aborts empty rather than report a spurious witness.
        analyze: consult the static analysis tier
            (:mod:`repro.analysis`) to prune the instance space before
            enumerating.  Both prunes are lossless: queries proved empty
            on *every* instance cannot disagree anywhere, and when both
            sides are support-determined (``DISTINCT``-rooted,
            aggregate-free) multiplicities above 1 cannot create a
            disagreement that multiplicity 1 misses.  Off switch exists
            for benchmarking the unpruned search.
    """
    if tables is None:
        tables = dict(free_tables(q1))
        for name, schema in free_tables(q2).items():
            known = tables.get(name)
            if known is not None and known != schema:
                raise ValueError(f"table {name!r} used at two schemas")
            tables[name] = schema
    for name, schema in tables.items():
        if not schema.is_concrete:
            raise ValueError(
                f"cannot enumerate instances of table {name!r} with "
                f"non-concrete schema {schema}")
    if analyze:
        ctx = AnalysisContext.from_hypotheses(hyps) if hyps is not None \
            else EMPTY_CONTEXT
        if infer_properties(q1, ctx).empty and infer_properties(q2, ctx).empty:
            # Both sides denote the empty bag on *every* instance
            # satisfying ``hyps`` — no instance can tell them apart, so
            # the whole bound is exhausted without enumerating at all.
            counter("analysis.disprover.static_equal").inc()
            return DisproofResult(None, None, bound, 0, exhausted=True)
        if bound.max_multiplicity > 1 and supports_determined(q1) \
                and supports_determined(q2):
            # Support-determined outputs (DISTINCT-rooted, aggregate-
            # free) are functions of which rows each table holds, never
            # of their multiplicities, so any disagreement visible at
            # multiplicity ≤ k is already visible at multiplicity 1.
            # Clamping shrinks the product space exponentially and — by
            # that argument — loses no counterexamples; the reported
            # bound is the clamped one actually searched, with the
            # original covered by implication.
            counter("analysis.disprover.mult_clamped").inc()
            bound = replace(bound, max_multiplicity=1)
    names = sorted(tables)
    spaces = []
    for name in names:
        rels = list(enumerate_relations(tables[name], bound, semiring))
        checkers = _constraint_checkers(name, hyps, base_interp, semiring)
        if checkers is None:
            return DisproofResult(None, None, bound, 0, exhausted=False)
        if checkers:
            rels = [r for r in rels if all(check(r) for check in checkers)]
        spaces.append(rels)
    checked = 0
    for combo in itertools.product(*spaces) if names else iter([()]):
        if max_instances is not None and checked >= max_instances:
            return DisproofResult(None, None, bound, checked, exhausted=False)
        checked += 1
        interp = _with_relations(base_interp, names, combo, tables)
        lhs = run_query(q1, interp, semiring)
        rhs = run_query(q2, interp, semiring)
        if lhs != rhs:
            cx = Counterexample(
                trial=checked - 1, lhs_query=q1, rhs_query=q2,
                interpretation=interp, lhs_result=lhs, rhs_result=rhs)
            record = counterexample_record(cx, tables, note=(
                f"found by bounded-exhaustive search, instance #{checked}"))
            return DisproofResult(cx, record, bound, checked, exhausted=False)
    return DisproofResult(None, None, bound, checked, exhausted=True)


def _constraint_checkers(name: str, hyps: Optional[Hypotheses],
                         interp: Optional[Interpretation],
                         semiring: Semiring):
    """Predicates enforcing ``hyps`` on table ``name``'s instances.

    Key semantics (paper Sec. 4.2): a keyed relation is set-valued and its
    key projection is injective on the support.  An FD ``a → b`` requires
    equal ``a``-projections to force equal ``b``-projections.  Returns
    ``None`` when a relevant constraint's projection cannot be resolved —
    the caller must then refuse to enumerate rather than produce
    constraint-violating "counterexamples".
    """
    if hyps is None:
        return []
    checkers = []
    for key in hyps.keys:
        if key.rel != name:
            continue
        proj = _resolve_projection(interp, key.proj)
        if proj is None:
            return None

        def key_ok(rel, proj=proj):
            seen: Dict[Any, Any] = {}
            for row, mult in rel.items():
                if mult != semiring.one:
                    return False
                k = proj(row)
                if k in seen and seen[k] != row:
                    return False
                seen[k] = row
            return True

        checkers.append(key_ok)
    for fd in hyps.fds:
        if fd.rel != name:
            continue
        source = _resolve_projection(interp, fd.source)
        target = _resolve_projection(interp, fd.target)
        if source is None or target is None:
            return None

        def fd_ok(rel, source=source, target=target):
            seen: Dict[Any, Any] = {}
            for row, _ in rel.items():
                s, t = source(row), target(row)
                if s in seen and seen[s] != t:
                    return False
                seen[s] = t
            return True

        checkers.append(fd_ok)
    return checkers


def _resolve_projection(interp: Optional[Interpretation], name: str):
    if interp is None:
        return None
    try:
        return interp.projection(name)
    except KeyError:
        return None


def _with_relations(base: Optional[Interpretation], names: List[str],
                    relations: Tuple[KRelation, ...],
                    schemas: Dict[str, Schema]) -> Interpretation:
    interp = Interpretation()
    if base is not None:
        interp.predicates.update(base.predicates)
        interp.projections.update(base.projections)
        interp.expressions.update(base.expressions)
        interp.functions.update(base.functions)
        interp.aggregates.update(base.aggregates)
        interp.relations.update(base.relations)
        interp.schemas.update(base.schemas)
    for name, rel in zip(names, relations):
        interp.relations[name] = rel
        interp.schemas[name] = schemas[name]
    return interp


def disprove_factory(factory, bound: Bound = Bound(), draws: int = 3,
                     seed: int = 0, semiring: Semiring = NAT,
                     max_instances: Optional[int] = None,
                     hyps: Optional[Hypotheses] = None) -> DisproofResult:
    """Bounded-exhaustive search driven by an instance factory.

    The factory (a rule's instantiator) fixes schemas and metavariable
    bindings — attribute paths, predicate functions; for each of ``draws``
    instantiations the table contents are then enumerated exhaustively
    instead of sampled (restricted to instances satisfying ``hyps``).
    The budget ``max_instances`` is shared across draws.
    """
    total_checked = 0
    exhausted_all = True
    for draw in range(draws):
        lhs, rhs, interp = factory(random.Random(seed + draw))
        tables = {name: interp.schemas[name] for name in interp.relations}
        remaining = (None if max_instances is None
                     else max(0, max_instances - total_checked))
        if remaining == 0:
            exhausted_all = False
            break
        result = disprove(lhs, rhs, tables, bound, semiring,
                          base_interp=interp, max_instances=remaining,
                          hyps=hyps)
        total_checked += result.instances_checked
        if result.found:
            return replace(result, instances_checked=total_checked)
        exhausted_all = exhausted_all and result.exhausted
    return DisproofResult(None, None, bound, total_checked,
                          exhausted=exhausted_all)


def disprove_rule(rule, bound: Bound = Bound(), draws: int = 3,
                  seed: int = 0, semiring: Semiring = NAT,
                  max_instances: Optional[int] = None) -> DisproofResult:
    """Bounded-exhaustive refutation of a generic rewrite rule.

    The rule's integrity-constraint hypotheses restrict the instance
    space: a keyed relation only ranges over key-respecting instances.
    """
    if rule.instantiate is None:
        raise ValueError(f"rule {rule.name!r} has no instantiator")
    return disprove_factory(rule.instantiate, bound, draws, seed, semiring,
                            max_instances, hyps=rule.hypotheses)


# ---------------------------------------------------------------------------
# Records and replay
# ---------------------------------------------------------------------------

def counterexample_record(cx: Counterexample,
                          schemas: Dict[str, Schema],
                          note: str = "") -> CounterexampleRecord:
    """Serialize an engine counterexample into replayable plain data."""
    tables = []
    for name in sorted(cx.interpretation.relations):
        rel = cx.interpretation.relations[name]
        schema = schemas.get(name, cx.interpretation.schemas.get(name))
        rows = []
        for row, mult in sorted(rel.items(), key=lambda kv: repr(kv[0])):
            flat = (tuple(tuple_flatten(schema, row))
                    if schema is not None else (row,))
            rows.append((flat, _as_int(mult)))
        tables.append((name, tuple(rows)))
    disagreements = []
    all_rows = set(cx.lhs_result.support()) | set(cx.rhs_result.support())
    for row in sorted(all_rows, key=repr):
        left = cx.lhs_result.annotation(row)
        right = cx.rhs_result.annotation(row)
        if left != right:
            disagreements.append((repr(row), repr(left), repr(right)))
    extra = ("" if not _has_callables(cx.interpretation)
             else "metavariable bindings fixed by the instantiator are "
                  "not serialized; replay via the live counterexample")
    full_note = "; ".join(p for p in (note, extra) if p)
    return CounterexampleRecord(tables=tuple(tables),
                                disagreements=tuple(disagreements),
                                note=full_note)


def _as_int(mult: Any) -> int:
    try:
        return int(mult)
    except (TypeError, ValueError):
        return 1


def _has_callables(interp: Interpretation) -> bool:
    return bool(interp.predicates or interp.projections
                or interp.expressions)


def replay(record: CounterexampleRecord, q1: ast.Query, q2: ast.Query,
           schemas: Dict[str, Schema],
           semiring: Semiring = NAT) -> Tuple[KRelation, KRelation]:
    """Re-evaluate both queries on a recorded instance.

    Only meaningful for closed queries (no metavariable callables); the
    pipeline and CLI use it to demonstrate that a DISPROVED verdict's
    instance really separates the queries.
    """
    interp = Interpretation()
    for name, rows in record.tables:
        schema = schemas[name]
        rel = KRelation(semiring)
        for flat, mult in rows:
            rel.add(tuple_of(schema, list(flat)), semiring.from_int(mult))
        interp.relations[name] = rel
        interp.schemas[name] = schema
    return run_query(q1, interp, semiring), run_query(q2, interp, semiring)


__all__ = [
    "Bound",
    "DisproofResult",
    "SMALL_DOMAINS",
    "count_relations",
    "counterexample_record",
    "disprove",
    "disprove_factory",
    "disprove_rule",
    "enumerate_relations",
    "free_tables",
    "has_metavariables",
    "replay",
]
