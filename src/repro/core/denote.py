"""Denotational semantics of HoTTSQL into UniNomial (paper Figure 7).

A query in context Γ denotes a function ``Tuple Γ → Tuple σ → U``; here we
build the *body* of that function symbolically: given tuple terms ``g``
(the context tuple) and ``t`` (the output tuple), :func:`denote_query`
returns the UniNomial term for ``⟦Γ ⊢ q : σ⟧ g t``.

The context-threading discipline of Figure 6/7 is implemented literally:
``WHERE`` and ``SELECT`` extend the context by pairing ``(g, t)``, and
``CASTPRED`` / ``CASTEXPR`` re-scope by applying the denoted projection to
the context tuple.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast
from .intern import KernelLRU
from .schema import EMPTY, Leaf, Node, Schema
from .typecheck import (
    TypecheckError,
    check_predicate,
    infer_projection,
    infer_query,
)
from .uninomial import (
    ONE,
    TAgg,
    TApp,
    TConst,
    TVar,
    Term,
    UNIT,
    UPred,
    URel,
    UTerm,
    ZERO,
    fresh_var,
    tfst,
    tpair,
    tsnd,
    uadd,
    ueq,
    umul,
    uneg,
    usquash,
    usum,
)


def _denote_memo(node, key):
    """Per-node denotation stash (``{(ctx, tuple terms...) -> result}``).

    Nodes are immutable and (usually) interned, so a subtree shared by
    several queries denotes once per distinct context/tuple arguments.
    Reusing a denotation is sound — the only non-determinism is fresh
    binder names, and every consumer is alpha-invariant; sharing the
    *same* interned result is what lets the identity-keyed memos
    downstream (``normalize``) hit.  Returns ``None`` for unhashable
    keys (exotic constant payloads): those denote uncached.
    """
    cache = node.__dict__.get("_hc_denote")
    if cache is None:
        cache = {}
        object.__setattr__(node, "_hc_denote", cache)
    try:
        return cache, cache.get(key)
    except TypeError:
        return None, None


def denote_query(query: ast.Query, ctx: Schema, g: Term, t: Term) -> UTerm:
    """``⟦Γ ⊢ q : σ⟧ g t`` — the multiplicity of tuple ``t`` in ``q``."""
    cache, hit = _denote_memo(query, (ctx, g, t))
    if hit is not None:
        return hit
    result = _denote_query(query, ctx, g, t)
    if cache is not None:
        cache[(ctx, g, t)] = result
    return result


def _denote_query(query: ast.Query, ctx: Schema, g: Term, t: Term) -> UTerm:
    if isinstance(query, ast.Table):
        return URel(query.name, t)

    if isinstance(query, ast.Select):
        inner_schema = infer_query(query.query, ctx)
        t_prime = fresh_var(inner_schema, "t")
        ext_ctx = Node(ctx, inner_schema)
        projected = denote_projection(query.projection, ext_ctx, tpair(g, t_prime))
        body = umul(ueq(projected, t),
                    denote_query(query.query, ctx, g, t_prime))
        return usum(t_prime, body)

    if isinstance(query, ast.Product):
        return umul(denote_query(query.left, ctx, g, tfst(t)),
                    denote_query(query.right, ctx, g, tsnd(t)))

    if isinstance(query, ast.Where):
        inner_schema = infer_query(query.query, ctx)
        ext_ctx = Node(ctx, inner_schema)
        return umul(denote_query(query.query, ctx, g, t),
                    denote_predicate(query.predicate, ext_ctx, tpair(g, t)))

    if isinstance(query, ast.UnionAll):
        return uadd(denote_query(query.left, ctx, g, t),
                    denote_query(query.right, ctx, g, t))

    if isinstance(query, ast.Except):
        return umul(denote_query(query.left, ctx, g, t),
                    uneg(denote_query(query.right, ctx, g, t)))

    if isinstance(query, ast.Distinct):
        return usquash(denote_query(query.query, ctx, g, t))

    raise TypecheckError(f"cannot denote query node: {query!r}")


def denote_predicate(pred: ast.Predicate, ctx: Schema, g: Term) -> UTerm:
    """``⟦Γ ⊢ b⟧ g`` — a proposition (squash type)."""
    cache, hit = _denote_memo(pred, (ctx, g))
    if hit is not None:
        return hit
    result = _denote_predicate(pred, ctx, g)
    if cache is not None:
        cache[(ctx, g)] = result
    return result


def _denote_predicate(pred: ast.Predicate, ctx: Schema, g: Term) -> UTerm:
    if isinstance(pred, ast.PredEq):
        return ueq(denote_expression(pred.left, ctx, g),
                   denote_expression(pred.right, ctx, g))
    if isinstance(pred, ast.PredAnd):
        return umul(denote_predicate(pred.left, ctx, g),
                    denote_predicate(pred.right, ctx, g))
    if isinstance(pred, ast.PredOr):
        return usquash(uadd(denote_predicate(pred.left, ctx, g),
                            denote_predicate(pred.right, ctx, g)))
    if isinstance(pred, ast.PredNot):
        return uneg(denote_predicate(pred.operand, ctx, g))
    if isinstance(pred, ast.PredTrue):
        return ONE
    if isinstance(pred, ast.PredFalse):
        return ZERO
    if isinstance(pred, ast.Exists):
        inner_schema = infer_query(pred.query, ctx)
        t = fresh_var(inner_schema, "t")
        return usquash(usum(t, denote_query(pred.query, ctx, g, t)))
    if isinstance(pred, ast.CastPred):
        inner_ctx = infer_projection(pred.projection, ctx)
        recast = denote_projection(pred.projection, ctx, g)
        return denote_predicate(pred.predicate, inner_ctx, recast)
    if isinstance(pred, ast.PredVar):
        return UPred(pred.name, (g,))
    if isinstance(pred, ast.PredFunc):
        args = tuple(denote_expression(a, ctx, g) for a in pred.args)
        return UPred(pred.name, args)
    raise TypecheckError(f"cannot denote predicate node: {pred!r}")


def denote_expression(expr: ast.Expression, ctx: Schema, g: Term) -> Term:
    """``⟦Γ ⊢ e : τ⟧ g`` — a scalar (leaf-schema) term."""
    if isinstance(expr, ast.P2E):
        return denote_projection(expr.projection, ctx, g)
    if isinstance(expr, ast.Const):
        return TConst(expr.value, expr.ty)
    if isinstance(expr, ast.Func):
        args = tuple(denote_expression(a, ctx, g) for a in expr.args)
        return TApp(expr.name, args, Leaf(expr.ty))
    if isinstance(expr, ast.Agg):
        inner_schema = infer_query(expr.query, ctx)
        if not isinstance(inner_schema, Leaf):
            raise TypecheckError(
                f"aggregate over non-single-column schema {inner_schema}")
        v = fresh_var(inner_schema, "a")
        body = denote_query(expr.query, ctx, g, v)
        return TAgg(expr.name, v, body, expr.ty)
    if isinstance(expr, ast.CastExpr):
        inner_ctx = infer_projection(expr.projection, ctx)
        recast = denote_projection(expr.projection, ctx, g)
        return denote_expression(expr.expression, inner_ctx, recast)
    if isinstance(expr, ast.ExprVar):
        return TApp(expr.name, (g,), Leaf(expr.ty))
    raise TypecheckError(f"cannot denote expression node: {expr!r}")


def denote_projection(proj: ast.Projection, source: Schema, g: Term) -> Term:
    """``⟦p : Γ ⇒ Γ'⟧ g`` — a tuple term of the target schema."""
    cache, hit = _denote_memo(proj, (source, g))
    if hit is not None:
        return hit
    result = _denote_projection(proj, source, g)
    if cache is not None:
        cache[(source, g)] = result
    return result


def _denote_projection(proj: ast.Projection, source: Schema, g: Term) -> Term:
    if isinstance(proj, ast.Star):
        return g
    if isinstance(proj, ast.LeftP):
        return tfst(g)
    if isinstance(proj, ast.RightP):
        return tsnd(g)
    if isinstance(proj, ast.EmptyP):
        return UNIT
    if isinstance(proj, ast.Compose):
        middle_schema = infer_projection(proj.first, source)
        middle = denote_projection(proj.first, source, g)
        return denote_projection(proj.second, middle_schema, middle)
    if isinstance(proj, ast.Duplicate):
        return tpair(denote_projection(proj.left, source, g),
                     denote_projection(proj.right, source, g))
    if isinstance(proj, ast.E2P):
        return denote_expression(proj.expression, source, g)
    if isinstance(proj, ast.PVar):
        return TApp(proj.name, (g,), proj.target)
    raise TypecheckError(f"cannot denote projection node: {proj!r}")


@dataclass(frozen=True)
class Denotation:
    """A closed query denotation: ``λ g t. body`` with its schemas."""

    ctx: Schema
    schema: Schema
    g: TVar
    t: TVar
    body: UTerm

    def __str__(self) -> str:
        return f"λ {self.g} {self.t}. {self.body}"


#: Memo for :func:`denote_closed`, keyed on query object identity + ctx.
#: Each entry holds a strong reference to its query, so an entry's id can
#: never be reused while the entry lives.  Returning the same Denotation
#: (same fresh ``g``/``t``, same interned body) for repeated denotations
#: of one query object is what lets ``normalize``'s identity-keyed memo
#: hit on the per-pair workloads the pipeline runs.
_DENOTE_MEMO = KernelLRU(2048, "denote")


def denote_closed(query: ast.Query, ctx: Schema = EMPTY) -> Denotation:
    """Typecheck and denote a top-level query with fresh ``g`` and ``t``.

    This is the entry point the prover and the pretty-printing examples use:
    it reproduces the ``⟦Γ ⊢ q : σ⟧`` judgements of the paper's worked
    examples (Figures 1 and 2).  Memoized per (query object, context):
    denoting the same query again returns the same Denotation, fresh
    variables included.
    """
    key = (id(query), ctx)
    hit = _DENOTE_MEMO.get(key)
    if hit is not None and hit[0] is query:
        return hit[1]
    schema = infer_query(query, ctx)
    g = fresh_var(ctx, "g")
    t = fresh_var(schema, "t")
    body = denote_query(query, ctx, g, t)
    denotation = Denotation(ctx=ctx, schema=schema, g=g, t=t, body=body)
    _DENOTE_MEMO.put(key, (query, denotation))
    return denotation


def denote_closed_predicate(pred: ast.Predicate, ctx: Schema) -> UTerm:
    """Typecheck and denote a predicate with a fresh context variable."""
    check_predicate(pred, ctx)
    g = fresh_var(ctx, "g")
    return denote_predicate(pred, ctx, g)


__all__ = [
    "Denotation",
    "denote_closed",
    "denote_closed_predicate",
    "denote_expression",
    "denote_predicate",
    "denote_projection",
    "denote_query",
]
