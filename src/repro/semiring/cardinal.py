"""Cardinal numbers with a distinguished infinite element ``omega``.

HoTTSQL's first generalization of K-relations (paper Sec. 2) drops the
finite-support requirement and lets a tuple's multiplicity be *any* cardinal,
finite or infinite.  In the Coq artifact multiplicities are univalent types;
their decategorified image — what equational reasoning actually observes —
is cardinal arithmetic.  This module provides that arithmetic.

We model the cardinals relevant to countable databases: the naturals together
with a single countably-infinite cardinal ``omega`` (aleph-0).  All semiring
laws used by the paper's proofs hold:

* ``(Cardinal, +, ×, 0, 1)`` is a commutative semiring,
* ``omega`` is absorbing for ``+`` and for ``×`` against non-zero values,
* ``0 × omega = 0`` (the empty type times anything is empty),
* squash/truncation ``‖n‖`` collapses to ``0`` or ``1``,
* negation ``n → 0`` is ``1`` iff ``n = 0``.

Cardinals are immutable and hashable, so they can be used as K-relation
multiplicities and dictionary values.
"""

from __future__ import annotations

import functools
from typing import Union

_OMEGA_SENTINEL = object()


@functools.total_ordering
class Cardinal:
    """A cardinal number: a natural number or the infinite cardinal omega.

    Construct with ``Cardinal(n)`` for finite values or use the module-level
    constant :data:`OMEGA`.  Arithmetic follows cardinal arithmetic for
    countable cardinals: addition and multiplication of finite values are the
    usual ones; any sum involving omega is omega; any product involving omega
    is omega unless the other factor is zero.
    """

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, object]) -> None:
        if value is _OMEGA_SENTINEL:
            self._value = _OMEGA_SENTINEL
        else:
            if not isinstance(value, int):
                raise TypeError(f"Cardinal requires an int or omega, got {value!r}")
            if value < 0:
                raise ValueError(f"Cardinal cannot be negative: {value}")
            self._value = value

    # -- basic predicates -------------------------------------------------

    @property
    def is_infinite(self) -> bool:
        """True iff this cardinal is omega."""
        return self._value is _OMEGA_SENTINEL

    @property
    def is_finite(self) -> bool:
        """True iff this cardinal is a natural number."""
        return not self.is_infinite

    @property
    def is_zero(self) -> bool:
        """True iff this cardinal is 0."""
        return self._value == 0

    def finite_value(self) -> int:
        """Return the underlying natural number.

        Raises:
            ValueError: if the cardinal is omega.
        """
        if self.is_infinite:
            raise ValueError("omega has no finite value")
        return self._value  # type: ignore[return-value]

    # -- semiring operations ----------------------------------------------

    def __add__(self, other: "Cardinal") -> "Cardinal":
        other = _coerce(other)
        if self.is_infinite or other.is_infinite:
            return OMEGA
        return Cardinal(self._value + other._value)  # type: ignore[operator]

    __radd__ = __add__

    def __mul__(self, other: "Cardinal") -> "Cardinal":
        other = _coerce(other)
        if self.is_zero or other.is_zero:
            return ZERO
        if self.is_infinite or other.is_infinite:
            return OMEGA
        return Cardinal(self._value * other._value)  # type: ignore[operator]

    __rmul__ = __mul__

    def squash(self) -> "Cardinal":
        """Propositional truncation ``‖n‖``: 0 stays 0, everything else is 1."""
        return ZERO if self.is_zero else ONE

    def negate(self) -> "Cardinal":
        """The type ``n → 0``: 1 when n is 0, otherwise 0."""
        return ONE if self.is_zero else ZERO

    # -- comparison / hashing ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Cardinal(other)
        if not isinstance(other, Cardinal):
            return NotImplemented
        return self._value is other._value if self.is_infinite or other.is_infinite \
            else self._value == other._value

    def __lt__(self, other: "Cardinal") -> bool:
        other = _coerce(other)
        if self.is_infinite:
            return False
        if other.is_infinite:
            return True
        return self._value < other._value  # type: ignore[operator]

    def __hash__(self) -> int:
        return hash(("Cardinal", "omega" if self.is_infinite else self._value))

    def __repr__(self) -> str:
        return "omega" if self.is_infinite else f"Cardinal({self._value})"

    def __str__(self) -> str:
        return "ω" if self.is_infinite else str(self._value)

    def __bool__(self) -> bool:
        return not self.is_zero


def _coerce(value: Union[int, Cardinal]) -> Cardinal:
    if isinstance(value, Cardinal):
        return value
    if isinstance(value, int):
        return Cardinal(value)
    raise TypeError(f"cannot interpret {value!r} as a Cardinal")


#: The zero cardinal (the empty type).
ZERO = Cardinal(0)

#: The unit cardinal (the singleton type).
ONE = Cardinal(1)

#: The countably infinite cardinal (aleph-0).
OMEGA = Cardinal(_OMEGA_SENTINEL)


def cardinal_sum(values) -> Cardinal:
    """Sum an iterable of cardinals (the finitary fragment of the paper's Σ)."""
    total = ZERO
    for v in values:
        total = total + _coerce(v)
    return total


def cardinal_product(values) -> Cardinal:
    """Multiply an iterable of cardinals."""
    total = ONE
    for v in values:
        total = total * _coerce(v)
    return total
