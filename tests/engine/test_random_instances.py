"""The falsifier: random generation and counterexample search."""

import random


from repro.core import ast
from repro.core.schema import EMPTY, INT, Leaf, Node, validate_tuple
from repro.engine.database import Interpretation
from repro.engine.random_instances import (
    agreement_rate,
    deterministic_expression,
    deterministic_predicate,
    find_counterexample,
    path_projection,
    random_relation,
    random_tuple,
    random_value,
)
from repro.semiring import NAT

SCHEMA = Node(Leaf(INT), Leaf(INT))


class TestGenerators:
    def test_random_tuples_validate(self):
        rng = random.Random(0)
        for _ in range(50):
            value = random_tuple(rng, SCHEMA)
            assert validate_tuple(SCHEMA, value)

    def test_random_value_respects_domain(self):
        rng = random.Random(0)
        assert random_value(rng, INT, {"int": (9,)}) == 9

    def test_random_relation_bounds(self):
        rng = random.Random(1)
        rel = random_relation(rng, SCHEMA, NAT, max_rows=3,
                              max_multiplicity=2)
        assert len(rel) <= 3
        assert all(m <= 2 * 3 for _, m in rel.items())

    def test_unit_schema(self):
        rng = random.Random(0)
        assert random_tuple(rng, EMPTY) == ()

    def test_deterministic_predicate_is_deterministic(self):
        p1 = deterministic_predicate(42)
        p2 = deterministic_predicate(42)
        for value in range(20):
            assert p1(value) == p2(value)

    def test_different_seeds_differ_somewhere(self):
        p1 = deterministic_predicate(1)
        p2 = deterministic_predicate(2)
        assert any(p1(v) != p2(v) for v in range(100))

    def test_deterministic_expression(self):
        e = deterministic_expression(7, (10, 20, 30))
        assert e("x") in (10, 20, 30)
        assert e("x") == e("x")

    def test_path_projection(self):
        assert path_projection(("L",))((1, 2)) == 1
        assert path_projection(("R",))((1, 2)) == 2
        assert path_projection(())((1, 2)) == (1, 2)


class TestFalsifier:
    R = ast.Table("R", SCHEMA)

    def _factory_sound(self, rng):
        interp = Interpretation()
        interp.relations["R"] = random_relation(rng, SCHEMA, NAT)
        lhs = ast.UnionAll(self.R, self.R)
        rhs = ast.UnionAll(self.R, self.R)
        return lhs, rhs, interp

    def _factory_unsound(self, rng):
        interp = Interpretation()
        interp.relations["R"] = random_relation(rng, SCHEMA, NAT)
        lhs = self.R
        rhs = ast.Distinct(self.R)
        return lhs, rhs, interp

    def test_sound_rule_survives(self):
        assert find_counterexample(self._factory_sound, trials=20) is None

    def test_unsound_rule_refuted(self):
        cex = find_counterexample(self._factory_unsound, trials=60)
        assert cex is not None
        assert cex.lhs_result != cex.rhs_result
        assert "multiplicity" in cex.describe()

    def test_agreement_rate_bounds(self):
        assert agreement_rate(self._factory_sound, trials=10) == 1.0
        assert agreement_rate(self._factory_unsound, trials=60) < 1.0


class TestDomainIsolation:
    """Regression: the module default domains must never be handed out
    directly — a caller mutating its ``domains`` mapping must not poison
    later default-domain calls."""

    def test_custom_domains_do_not_leak_into_defaults(self):
        rng = random.Random(0)
        assert random_value(rng, INT, {"int": (7,)}) == 7
        assert random_value(random.Random(0), INT) in (0, 1, 2)

    def test_resolved_default_is_a_fresh_copy(self):
        from repro.core.schema import DEFAULT_DOMAINS
        from repro.engine.random_instances import _resolve_domains

        resolved = _resolve_domains(None)
        assert resolved == DEFAULT_DOMAINS
        resolved["int"] = (99,)
        resolved["string"] = ()
        assert DEFAULT_DOMAINS["int"] == (0, 1, 2)
        assert random_value(random.Random(0), INT) in (0, 1, 2)

    def test_relation_generators_accept_none(self):
        rng = random.Random(3)
        rel = random_relation(rng, SCHEMA, NAT, max_rows=4, domains=None)
        for row in rel.support():
            assert validate_tuple(SCHEMA, row)
