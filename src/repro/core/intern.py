"""Hash-consing kernel: interned terms with cached node metadata.

Every UniNomial verdict bottoms out in structural operations on
:mod:`repro.core.uninomial` / :mod:`repro.core.normalize` trees — hashing
them into congruence-closure tables, comparing them during AC matching,
recomputing free-variable sets and alpha-canonical keys.  As plain frozen
dataclasses those operations are O(term size) *every time*; under the
ROADMAP's heavy-traffic north star they dominate the profile (the
pre-kernel profile spends ~45% of prover time inside ``builtins.hash``).

This module provides the egg-style fix (cf. the e-graph literature behind
:mod:`repro.core.congruence`): **hash-consing**.  The :func:`interned`
class decorator reroutes a frozen dataclass's constructor through a
per-class table so that structurally equal constructions return the *same*
object:

* ``TVar("x", s) is TVar("x", s)`` — pointer equality coincides with
  structural equality for canonical nodes, so ``__eq__`` answers identity
  checks first and two canonical nodes are unequal without recursion;
* ``__hash__`` is computed once and stored on the node (children are
  themselves interned, so the first computation is O(children), not
  O(subtree));
* ``__str__`` and ``schema`` lookups are likewise computed once per node;
* per-node semantic metadata — free-variable frozensets, alpha-canonical
  keys, proposition flags — is attached by the defining modules through
  the same one-slot-per-node convention (attributes stashed with
  ``object.__setattr__`` on first use; see ``term_free_vars`` and
  ``term_alpha_key``).

Canonical nodes live in per-class strong dict tables, egg-style: once a
node wins its slot it stays canonical for the life of the process, and
the table can never "evict" a live node (which would let a second
canonical twin appear and break the pointer-equality invariant).  Table
keys identify children by ``id`` — sound because a table entry keeps its
children alive, so their ids cannot be reused.  (Earlier revisions used
``weakref.WeakValueDictionary`` here; the strong table drops the
KeyedRef allocation and deref from the constructor — the single largest
line in the cold prover profile — and matches the arena columns, which
pin decoded nodes until ``reset_arena`` anyway.)

Pickling re-interns: interned classes reduce to ``(cls, field_values)``,
so a term crossing the batch service's process boundary is reconstructed
through the constructor and lands on the receiving process's canonical
node.  Instances restored through other paths (or carrying unhashable
payloads) simply stay un-canonical: they still compare structurally, they
just do not get the pointer fast paths.

Thread safety: the intern tables and every :class:`KernelLRU` take a lock
around their critical sections; racing constructors may build a transient
duplicate, but only the table winner is ever returned (and only the
winner is marked canonical).  The constructor's table *probe* is
lock-free, so the hit counter is approximate under concurrency; the
canonical-node count is exact.

The module also hosts :class:`KernelLRU`, the bounded thread-safe
memo table used by the kernel's caching layers (``normalize``,
``denote_closed``, alpha-key reprs), and the aggregate counters
(:func:`intern_stats`, :func:`kernel_stats`) surfaced through
``ProofStats`` and the CLI's ``check --verbose``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import fields as _dataclass_fields
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "KernelLRU",
    "clear_kernel_caches",
    "intern_stats",
    "interned",
    "kernel_backend",
    "kernel_stats",
    "set_kernel_backend",
]


# ---------------------------------------------------------------------------
# Kernel backend selection (REPRO_KERNEL=arena|object)
#
# ``arena`` routes ``normalize`` through the flat int-indexed arena kernel
# (:mod:`repro.core.arena`); ``object`` keeps the recursive object-graph
# normalizer.  Both produce interned object normal forms, so everything
# downstream of ``normalize`` is backend-agnostic.  The switch lives here
# (rather than in the arena module) because it must be importable from
# ``normalize`` without a cycle.
# ---------------------------------------------------------------------------

_VALID_BACKENDS = ("arena", "object")


def _env_backend() -> str:
    value = os.environ.get("REPRO_KERNEL", "").strip().lower()
    return value if value in _VALID_BACKENDS else "arena"


_KERNEL_BACKEND = _env_backend()


def kernel_backend() -> str:
    """The active term-kernel backend: ``"arena"`` or ``"object"``."""
    return _KERNEL_BACKEND


def set_kernel_backend(name: str) -> str:
    """Select the term-kernel backend process-wide; returns the previous one.

    The choice only affects *how* normal forms are computed, never what
    they are (up to alpha-equivalence), so switching mid-process is safe;
    the ``normalize`` memo keys results per backend.
    """
    global _KERNEL_BACKEND
    if name not in _VALID_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{_VALID_BACKENDS}")
    previous = _KERNEL_BACKEND
    _KERNEL_BACKEND = name
    return previous


# ---------------------------------------------------------------------------
# Per-class interning machinery
# ---------------------------------------------------------------------------

_LOCK = threading.Lock()

#: canonical-node marker attribute; present (and True) only on instances
#: that won their intern-table slot.
_READY = "_hc_ready"


class _ClassInfo:
    """Bookkeeping for one interned class."""

    __slots__ = ("table", "field_names", "canonize", "orig_init")

    def __init__(self, field_names: Tuple[str, ...],
                 canonize: Optional[Callable], orig_init: Callable) -> None:
        self.table: Dict[Any, Any] = {}
        self.field_names = field_names
        self.canonize = canonize
        self.orig_init = orig_init


_CLASSES: Dict[type, _ClassInfo] = {}
_INTERN_HITS = 0
_INTERN_MISSES = 0


def _canon(value: Any) -> Any:
    """Replace an interned-class instance by its canonical node."""
    info = _CLASSES.get(type(value))
    if info is not None:
        if value.__dict__.get(_READY):
            return value
        # A structurally valid but un-canonical instance (e.g. restored
        # through a legacy pickle path): rebuild through the constructor.
        return type(value)(*[getattr(value, n) for n in info.field_names])
    if type(value) is tuple:
        return tuple(_canon(v) for v in value)
    return value


def _key_of(value: Any) -> Any:
    """Intern-table key of one constructor argument.

    Canonical children are identified by ``id`` (unique while alive — and
    a live table entry keeps its children alive); strings by themselves;
    tuples recursively; any other value behind a ``("v", ...)`` tag so a
    raw integer can never collide with a child's id.
    """
    t = type(value)
    if t in _CLASSES and value.__dict__.get(_READY):
        return id(value)
    if t is tuple:
        return tuple(_key_of(v) for v in value)
    if t is str:
        return value
    return ("v", value)


def _fast_tuple_key(value: tuple) -> Optional[tuple]:
    """Key of a tuple argument whose members are all already canonical.

    Returns ``None`` when a member would need canonicalizing first; the
    constructor then falls back to the slow path.
    """
    parts: list = []
    for x in value:
        t = x.__class__
        if t in _CLASSES:
            if _READY in x.__dict__:
                parts.append(id(x))
            else:
                return None
        elif t is str:
            parts.append(x)
        elif t is tuple:
            kp = _fast_tuple_key(x)
            if kp is None:
                return None
            parts.append(kp)
        else:
            parts.append(("v", x))
    return tuple(parts)


def _bind(field_names: Tuple[str, ...], args: tuple,
          kwargs: dict) -> Optional[tuple]:
    """Normalize positional/keyword constructor arguments to field order.

    Returns ``None`` for arities the dataclass ``__init__`` would reject
    (including the zero-argument ``__new__`` pickling uses) — the caller
    then falls back to an un-interned instance and lets ``__init__``
    raise, preserving the original error behaviour.
    """
    n = len(field_names)
    if not kwargs:
        return args if len(args) == n else None
    if len(args) > n:
        return None
    vals = list(args)
    consumed = 0
    for name in field_names[len(args):]:
        if name not in kwargs:
            return None
        vals.append(kwargs[name])
        consumed += 1
    if consumed != len(kwargs):
        return None  # unknown or duplicate keyword
    return tuple(vals)


def interned(cls=None, *, canonize: Optional[Callable] = None):
    """Class decorator hash-consing a frozen dataclass.

    Apply *above* ``@dataclass(frozen=True)``.  ``canonize``, when given,
    maps the bound field-value tuple to its canonical form before
    interning (e.g. sorting an AC operator's operand tuple), so the
    canonical order is established once at construction.
    """
    if cls is None:
        return lambda c: interned(c, canonize=canonize)

    field_names = tuple(f.name for f in _dataclass_fields(cls))
    n_fields = len(field_names)
    info = _ClassInfo(field_names, canonize, cls.__init__)
    table = info.table
    orig_eq = cls.__eq__
    orig_hash = cls.__hash__
    # Wrap any non-default __str__ (own or inherited, e.g. the shared
    # Schema.__str__) with a per-node cache.
    orig_str = cls.__str__ if cls.__str__ is not object.__str__ else None

    def _slow_new(kls, args, kwargs):
        """Full constructor path: keyword args, wrong arity, un-canonical
        or unhashable children.  Canonicalizes children and builds the
        table key in one pass."""
        global _INTERN_HITS, _INTERN_MISSES
        vals = args if not kwargs and len(args) == n_fields \
            else _bind(field_names, args, kwargs)
        if vals is None:
            return object.__new__(kls)
        # Canonical interned children key by id; primitives by tagged
        # value (an id is an int, so raw numbers must not collide with
        # it); everything else by the value itself.
        canon_vals: list = []
        key_parts: list = []
        for v in vals:
            t = type(v)
            child_info = _CLASSES.get(t)
            if child_info is not None:
                if not v.__dict__.get(_READY):
                    v = t(*[getattr(v, name)
                            for name in child_info.field_names])
                    if not v.__dict__.get(_READY):
                        # Child cannot be canonicalized (unhashable
                        # payload): the parent stays un-interned too.
                        return object.__new__(kls)
                canon_vals.append(v)
                key_parts.append(id(v))
            elif t is tuple:
                v = _canon(v)
                canon_vals.append(v)
                key_parts.append(_key_of(v))
            else:
                canon_vals.append(v)
                key_parts.append(v if t is str else ("v", v))
        vals = tuple(canon_vals)
        if canonize is not None:
            vals = canonize(vals)
            key_parts = [_key_of(v) for v in vals]
        key = tuple(key_parts)
        try:
            inst = table.get(key)
        except TypeError:
            # Unhashable payload (exotic constant): stay un-interned;
            # __init__ below runs the original dataclass initializer.
            return object.__new__(kls)
        if inst is not None:
            _INTERN_HITS += 1
            return inst
        inst = object.__new__(kls)
        info.orig_init(inst, *vals)
        with _LOCK:
            winner = table.get(key)
            if winner is None:
                object.__setattr__(inst, _READY, True)
                table[key] = inst
                _INTERN_MISSES += 1
                winner = inst
            else:
                _INTERN_HITS += 1
        return winner

    def __new__(kls, *args, **kwargs):
        global _INTERN_HITS, _INTERN_MISSES
        if kls is not cls:
            return object.__new__(kls)
        if kwargs or len(args) != n_fields:
            return _slow_new(kls, args, kwargs)
        # Hot path: positional construction from already-canonical
        # children.  Builds only the table key — on a hit no argument
        # tuple is materialized and no child is re-canonicalized.
        key_parts: list = []
        for v in args:
            t = v.__class__
            if t in _CLASSES:
                if _READY in v.__dict__:
                    key_parts.append(id(v))
                else:
                    return _slow_new(kls, args, kwargs)
            elif t is str:
                key_parts.append(v)
            elif t is tuple:
                kp = _fast_tuple_key(v)
                if kp is None:
                    return _slow_new(kls, args, kwargs)
                key_parts.append(kp)
            else:
                key_parts.append(("v", v))
        vals = args
        if canonize is not None:
            vals = canonize(args)
            if len(vals) != n_fields or any(
                    a is not b for a, b in zip(vals, args)):
                key_parts = [_key_of(v) for v in vals]
        key = tuple(key_parts)
        try:
            # Lock-free probe: under the GIL this is one dict read, and
            # a stale miss only costs a re-derivation resolved under the
            # insert lock below.
            inst = table.get(key)
        except TypeError:
            # Unhashable payload (exotic constant): stay un-interned.
            return object.__new__(kls)
        if inst is not None:
            _INTERN_HITS += 1
            return inst
        inst = object.__new__(kls)
        info.orig_init(inst, *vals)
        with _LOCK:
            winner = table.get(key)
            if winner is None:
                object.__setattr__(inst, _READY, True)
                table[key] = inst
                _INTERN_MISSES += 1
                winner = inst
            else:
                _INTERN_HITS += 1
        return winner

    def __init__(self, *args, **kwargs):
        if self.__dict__.get(_READY):
            return  # canonical node: fields were set inside __new__
        info.orig_init(self, *args, **kwargs)

    def __eq__(self, other):
        if self is other:
            return True
        if self.__class__ is not other.__class__:
            return NotImplemented
        if self.__dict__.get(_READY) and other.__dict__.get(_READY):
            return False  # two distinct canonical nodes differ structurally
        return orig_eq(self, other)

    def __hash__(self):
        h = self.__dict__.get("_hc_hash")
        if h is None:
            h = orig_hash(self)
            object.__setattr__(self, "_hc_hash", h)
        return h

    def __reduce__(self):
        return (self.__class__,
                tuple(getattr(self, n) for n in field_names))

    cls.__new__ = __new__
    cls.__init__ = __init__
    cls.__eq__ = __eq__
    cls.__hash__ = __hash__
    cls.__reduce__ = __reduce__
    if orig_str is not None:
        def __str__(self):
            s = self.__dict__.get("_hc_str")
            if s is None:
                s = orig_str(self)
                object.__setattr__(self, "_hc_str", s)
            return s
        cls.__str__ = __str__
    schema_prop = cls.__dict__.get("schema")
    if isinstance(schema_prop, property) and schema_prop.fget is not None:
        orig_fget = schema_prop.fget

        def _schema(self):
            v = self.__dict__.get("_hc_schema")
            if v is None:
                v = orig_fget(self)
                object.__setattr__(self, "_hc_schema", v)
            return v
        cls.schema = property(_schema)
    _CLASSES[cls] = info
    return cls


# ---------------------------------------------------------------------------
# Bounded, thread-safe memo tables
#
# Per-node *metadata* caching does not live here: the defining modules
# stash computed values (free vars, alpha keys, flags) directly on the
# node with ``object.__setattr__`` — sound because nodes are immutable,
# canonical or not.
# ---------------------------------------------------------------------------

class KernelLRU:
    """A bounded LRU memo with hit/miss counters (thread-safe).

    Used for the kernel's function-level caches: ``normalize`` results,
    ``denote_closed`` denotations, alpha-key reprs.  Keys holding strong
    references to interned nodes keep those nodes canonical for as long
    as the memo entry lives.  Unhashable keys are silently uncacheable
    (``get`` misses, ``put`` is a no-op) so exotic payloads degrade to
    the uncached behaviour instead of raising.
    """

    def __init__(self, maxsize: int, name: str) -> None:
        if maxsize <= 0:
            raise ValueError("KernelLRU maxsize must be positive")
        self.maxsize = maxsize
        self.name = name
        self.hits = 0
        self.misses = 0
        #: monotonic counters — never zeroed by :meth:`reset` (nor by
        #: :meth:`clear`), so delta-based accounting (``after - before``)
        #: stays correct even when a measurement-window reset lands
        #: between the two reads.
        self.lifetime_hits = 0
        self.lifetime_misses = 0
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        _KERNEL_CACHES.append(self)

    def get(self, key: Any) -> Optional[Any]:
        try:
            with self._lock:
                value = self._data.get(key)
                if value is None:
                    self.misses += 1
                    self.lifetime_misses += 1
                    return None
                self._data.move_to_end(key)
                self.hits += 1
                self.lifetime_hits += 1
                return value
        except TypeError:
            with self._lock:
                self.misses += 1
                self.lifetime_misses += 1
            return None

    def put(self, key: Any, value: Any) -> None:
        try:
            with self._lock:
                self._data[key] = value
                self._data.move_to_end(key)
                while len(self._data) > self.maxsize:
                    self._data.popitem(last=False)
        except TypeError:
            pass

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def reset(self) -> Dict[str, float]:
        """Zero the window counters *without* dropping entries, atomically.

        The race-safe way to start a measurement window over a warm
        cache (dropping entries would also change what is measured);
        consumers that want cold caches use :func:`clear_kernel_caches`.

        The read of the outgoing window and its zeroing happen under one
        lock acquisition, and the pre-reset snapshot (including the
        monotonic ``lifetime_*`` counters) is returned — so no hit can
        ever fall between "snapshot taken" and "counters zeroed".  Delta
        consumers (``Session.metrics``, the pipeline's per-verdict
        kernel counters) difference the lifetime counters, which a reset
        never touches, so a reset landing between their two reads cannot
        under-report.
        """
        with self._lock:
            snap = self._snapshot_locked()
            self.hits = 0
            self.misses = 0
        return snap

    def _snapshot_locked(self) -> Dict[str, float]:
        hits, misses, size = self.hits, self.misses, len(self._data)
        total = hits + misses
        return {"hits": hits, "misses": misses, "size": size,
                "hit_rate": hits / total if total else 0.0,
                "lifetime_hits": self.lifetime_hits,
                "lifetime_misses": self.lifetime_misses}

    def snapshot(self) -> Dict[str, float]:
        """Point-in-time counters, read consistently under the lock.

        Unlike reading the ``hits``/``misses`` attributes directly, the
        tuple (hits, misses, size, lifetime_hits, lifetime_misses) is
        coherent — no writer can move one of them mid-read — which is
        what delta-based accounting (the pipeline's per-verdict kernel
        counters, the metrics registry's snapshots) needs.  The
        ``lifetime_*`` entries are monotonic: neither :meth:`reset` nor
        :meth:`clear` zeroes them.
        """
        with self._lock:
            return self._snapshot_locked()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return self.snapshot()


_KERNEL_CACHES: List[KernelLRU] = []


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------

def intern_stats() -> Dict[str, int]:
    """Intern-table counters: constructor hits/misses and live node count.

    ``interned_nodes`` counts canonical nodes in the tables;
    ``intern_misses`` is the total number of canonical nodes ever
    created.  ``intern_hits`` is incremented on the lock-free
    constructor probe, so under concurrent construction it is
    approximate (may undercount); node creation is always counted under
    the lock and stays exact.
    """
    with _LOCK:
        hits, misses = _INTERN_HITS, _INTERN_MISSES
    live = sum(len(info.table) for info in _CLASSES.values())
    return {"intern_hits": hits, "intern_misses": misses,
            "interned_nodes": live}


def kernel_stats() -> Dict[str, Any]:
    """One dict with every kernel counter (interning + memo tables + arena).

    Reading the arena section also refreshes the ``kernel.arena.*``
    gauges in the observability registry (see ``arena_stats``).
    """
    stats: Dict[str, Any] = dict(intern_stats())
    stats["backend"] = kernel_backend()
    for cache in _KERNEL_CACHES:
        for key, value in cache.stats().items():
            stats[f"{cache.name}_{key}"] = value
    from .arena import arena_stats
    for key, value in arena_stats().items():
        stats[f"arena_{key}"] = value
    return stats


def clear_kernel_caches() -> None:
    """Reset every memo table and the intern hit/miss counters.

    The intern *tables* themselves are deliberately not cleared: dropping
    a live canonical node's table entry would let a structurally equal
    twin be interned later, breaking pointer-equality ⇔ structural
    equality.  Benchmarks call this between runs for cold-cache timings.
    """
    global _INTERN_HITS, _INTERN_MISSES
    for cache in _KERNEL_CACHES:
        cache.clear()
    with _LOCK:
        _INTERN_HITS = 0
        _INTERN_MISSES = 0
