"""The rule registry: all 23 rules of Figure 8 (plus the buggy controls).

``PAPER_FIGURE_8`` records the counts and average proof LOC the paper
reports; the Figure 8 benchmark regenerates the table from this library and
compares shapes (rule counts per category must match; proof effort must
preserve the paper's ordering, with conjunctive queries fully automatic).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .aggregation import aggregation_rules
from .basic import basic_rules
from .buggy import buggy_rules
from .conjunctive import conjunctive_rules
from .extended import extended_rules
from .index import index_rules
from .magic import magic_rules
from .rule import RewriteRule
from .subquery import subquery_rules

#: Paper Figure 8: category → (number of rules, average lines of Coq proof).
PAPER_FIGURE_8: Dict[str, Tuple[int, float]] = {
    "basic": (8, 11.1),
    "aggregation": (1, 50.0),
    "subquery": (2, 17.0),
    "magic": (7, 30.3),
    "index": (3, 64.0),
    "conjunctive": (2, 1.0),
}

#: Display order of the categories, matching the paper's table.
CATEGORY_ORDER = ("basic", "aggregation", "subquery", "magic", "index",
                  "conjunctive")


def all_rules() -> Tuple[RewriteRule, ...]:
    """All sound rules — the 23 of Figure 8."""
    return (basic_rules() + aggregation_rules() + subquery_rules()
            + magic_rules() + index_rules() + conjunctive_rules())


def all_extended_rules() -> Tuple[RewriteRule, ...]:
    """Verified rules beyond the Figure 8 corpus (category ``extended``)."""
    return extended_rules()


def all_buggy_rules() -> Tuple[RewriteRule, ...]:
    """The unsound control rules."""
    return buggy_rules()


def rules_by_category() -> Dict[str, List[RewriteRule]]:
    """Sound rules grouped by Figure 8 category."""
    grouped: Dict[str, List[RewriteRule]] = {c: [] for c in CATEGORY_ORDER}
    for rule in all_rules():
        grouped[rule.category].append(rule)
    return grouped


def get_rule(name: str) -> RewriteRule:
    """Look up a rule (core, extended, or buggy) by name."""
    for rule in all_rules() + all_extended_rules() + all_buggy_rules():
        if rule.name == name:
            return rule
    raise KeyError(f"no rule named {name!r}")
