"""Recursive-descent parser for the SQL surface syntax.

Grammar (conventional precedence; ``UNION ALL``/``EXCEPT`` associate left)::

    query      := select (("UNION" "ALL" | "EXCEPT") select)*
    select     := "SELECT" ["DISTINCT"] items "FROM" from_items
                  ["WHERE" pred] ["GROUP" "BY" column] ["HAVING" pred]
                | "(" query ")"
    items      := "*" | item ("," item)*
    item       := expr ["AS" ident]
    from_items := from_item ("," from_item)*
    from_item  := ident [["AS"] ident] | "(" query ")" ["AS"] ident
    pred       := or_pred
    or_pred    := and_pred ("OR" and_pred)*
    and_pred   := not_pred ("AND" not_pred)*
    not_pred   := "NOT" not_pred | atom_pred
    atom_pred  := "TRUE" | "FALSE" | "EXISTS" "(" query ")"
                | "(" pred ")" | expr cmp expr
    expr       := add_expr
    add_expr   := mul_expr (("+" | "-") mul_expr)*
    mul_expr   := primary (("*" | "/") primary)*
    primary    := number | string | agg "(" "(" query ")" ")"
                | ident "(" args ")" | column | "(" expr ")"
    column     := ident ["." ident]
"""

from __future__ import annotations

from typing import List

from ..errors import ReproError
from . import nast
from .lexer import Token, tokenize

_AGGREGATES = frozenset({"SUM", "COUNT", "AVG", "MAX", "MIN"})
_COMPARISONS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})


class ParseError(ReproError):
    """Raised on a syntax error, with the offending token position."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message}, got {token} (at offset {token.position})")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing --------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _peek_at(self, offset: int) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise ParseError(f"expected {word}", self._peek())

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == "op" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise ParseError(f"expected {op!r}", self._peek())

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "ident":
            raise ParseError("expected an identifier", token)
        self._advance()
        return token.text

    # -- queries -----------------------------------------------------------

    def parse_query(self) -> nast.NQuery:
        query = self._parse_select_or_paren()
        while True:
            if self._peek().is_keyword("UNION"):
                self._advance()
                self._expect_keyword("ALL")
                right = self._parse_select_or_paren()
                query = nast.NUnionAll(query, right)
            elif self._peek().is_keyword("EXCEPT"):
                self._advance()
                right = self._parse_select_or_paren()
                query = nast.NExcept(query, right)
            else:
                return query

    def _parse_select_or_paren(self) -> nast.NQuery:
        if self._accept_op("("):
            query = self.parse_query()
            self._expect_op(")")
            return query
        return self._parse_select()

    def _parse_select(self) -> nast.NSelect:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = self._parse_select_items()
        self._expect_keyword("FROM")
        from_items = self._parse_from_items()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_pred()
        group_by = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._parse_column()
        having = None
        if self._accept_keyword("HAVING"):
            having = self._parse_pred()
        return nast.NSelect(distinct=distinct, items=tuple(items),
                            from_items=tuple(from_items), where=where,
                            group_by=group_by, having=having)

    def _parse_column(self) -> nast.NColumn:
        name = self._expect_ident()
        if self._accept_op("."):
            column = self._expect_ident()
            return nast.NColumn(table=name, column=column)
        return nast.NColumn(table=None, column=name)

    def _parse_select_items(self) -> List[nast.NSelectItem]:
        if self._accept_op("*"):
            return []
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> nast.NSelectItem:
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        return nast.NSelectItem(expr=expr, alias=alias)

    def _parse_from_items(self) -> List[nast.NFromItem]:
        items = [self._parse_from_item()]
        while self._accept_op(","):
            items.append(self._parse_from_item())
        return items

    def _parse_from_item(self) -> nast.NFromItem:
        if self._accept_op("("):
            query = self.parse_query()
            self._expect_op(")")
            # Standard SQL: a derived table needs an alias, but AS is noise.
            if not self._accept_keyword("AS") and self._peek().kind != "ident":
                raise ParseError("derived table requires an alias",
                                 self._peek())
            alias = self._expect_ident()
            return nast.NFromItem(source=query, alias=alias)
        name = self._expect_ident()
        alias = name
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().kind == "ident":
            alias = self._expect_ident()
        return nast.NFromItem(source=name, alias=alias)

    # -- predicates ---------------------------------------------------------

    def _parse_pred(self) -> nast.NPred:
        pred = self._parse_and_pred()
        while self._accept_keyword("OR"):
            pred = nast.NOr(pred, self._parse_and_pred())
        return pred

    def _parse_and_pred(self) -> nast.NPred:
        pred = self._parse_not_pred()
        while self._accept_keyword("AND"):
            pred = nast.NAnd(pred, self._parse_not_pred())
        return pred

    def _parse_not_pred(self) -> nast.NPred:
        if self._accept_keyword("NOT"):
            return nast.NNot(self._parse_not_pred())
        return self._parse_atom_pred()

    def _parse_atom_pred(self) -> nast.NPred:
        token = self._peek()
        if token.is_keyword("TRUE"):
            self._advance()
            return nast.NBoolLit(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return nast.NBoolLit(False)
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_op("(")
            query = self.parse_query()
            self._expect_op(")")
            return nast.NExists(query)
        if token.kind == "op" and token.text == "(":
            # Could be a parenthesized predicate or a parenthesized
            # expression starting a comparison; try the predicate first.
            saved = self._index
            self._advance()
            try:
                pred = self._parse_pred()
                self._expect_op(")")
                return pred
            except ParseError:
                self._index = saved
        left = self._parse_expr()
        op_token = self._peek()
        if op_token.kind != "op" or op_token.text not in _COMPARISONS:
            raise ParseError("expected a comparison operator", op_token)
        self._advance()
        right = self._parse_expr()
        return nast.NComparison(op=op_token.text, left=left, right=right)

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> nast.NExpr:
        return self._parse_add_expr()

    def _parse_add_expr(self) -> nast.NExpr:
        expr = self._parse_mul_expr()
        while True:
            if self._accept_op("+"):
                expr = nast.NBinOp("+", expr, self._parse_mul_expr())
            elif self._accept_op("-"):
                expr = nast.NBinOp("-", expr, self._parse_mul_expr())
            else:
                return expr

    def _parse_mul_expr(self) -> nast.NExpr:
        expr = self._parse_primary()
        while True:
            if self._accept_op("*"):
                expr = nast.NBinOp("*", expr, self._parse_primary())
            elif self._accept_op("/"):
                expr = nast.NBinOp("/", expr, self._parse_primary())
            else:
                return expr

    def _parse_primary(self) -> nast.NExpr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return nast.NLiteral(int(token.text))
        if token.kind == "string":
            self._advance()
            return nast.NLiteral(token.text)
        if token.kind == "op" and token.text == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect_op(")")
            return expr
        if token.kind == "ident":
            name = self._expect_ident()
            if self._accept_op("("):
                if name.upper() in _AGGREGATES:
                    return self._parse_agg_body(name.upper(), token)
                args = []
                if not self._accept_op(")"):
                    args.append(self._parse_expr())
                    while self._accept_op(","):
                        args.append(self._parse_expr())
                    self._expect_op(")")
                return nast.NFuncCall(name, tuple(args))
            if self._accept_op("."):
                column = self._expect_ident()
                return nast.NColumn(table=name, column=column)
            return nast.NColumn(table=None, column=name)
        raise ParseError("expected an expression", token)

    def _parse_agg_body(self, name: str, token: Token) -> nast.NExpr:
        """The argument of ``AGG(...)`` — an expression, or ``((query))``
        for an aggregate over an explicit subquery (what the unparser
        emits for desugared GROUP BY and what the decompiler produces)."""
        peek = self._peek()
        if peek.kind == "op" and peek.text == "(" \
                and self._peek_at(1).is_keyword("SELECT"):
            self._advance()
            query = self.parse_query()
            self._expect_op(")")
            self._expect_op(")")
            return nast.NAggQuery(name, query)
        if self._accept_op(")"):
            raise ParseError(f"aggregate {name} takes one argument", token)
        arg = self._parse_expr()
        if self._accept_op(","):
            raise ParseError(f"aggregate {name} takes one argument", token)
        self._expect_op(")")
        return nast.NAggCall(name, arg)


def parse(source: str) -> nast.NQuery:
    """Parse a SQL string into the named AST."""
    parser = _Parser(tokenize(source))
    query = parser.parse_query()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise ParseError("unexpected trailing input", trailing)
    return query
