"""Semiring implementations: laws, truncation, embeddings."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.semiring.cardinal import Cardinal, OMEGA
from repro.semiring.provenance import PROVENANCE, Polynomial
from repro.semiring.semirings import (
    BOOL,
    NAT,
    NAT_INF,
    STANDARD_SEMIRINGS,
    TROPICAL,
    check_semiring_laws,
)

_SAMPLES = {
    "bool": [False, True],
    "nat": [0, 1, 2, 3, 7],
    "nat_inf": [Cardinal(0), Cardinal(1), Cardinal(3), OMEGA],
    "tropical": [TROPICAL.INF, Fraction(0), Fraction(1), Fraction(5, 2)],
    "provenance": [Polynomial.zero(), Polynomial.one(),
                   Polynomial.variable("x"), Polynomial.variable("y"),
                   Polynomial.variable("x") + Polynomial.constant(2)],
}


@pytest.mark.parametrize("sr", [BOOL, NAT, NAT_INF, TROPICAL, PROVENANCE],
                         ids=lambda s: s.name)
def test_semiring_laws(sr):
    check_semiring_laws(sr, _SAMPLES[sr.name])


@pytest.mark.parametrize("sr", [BOOL, NAT, NAT_INF, PROVENANCE],
                         ids=lambda s: s.name)
def test_squash_and_negate(sr):
    assert sr.squash(sr.zero) == sr.zero
    assert sr.squash(sr.one) == sr.one
    assert sr.negate(sr.zero) == sr.one
    assert sr.negate(sr.one) == sr.zero
    two = sr.add(sr.one, sr.one)
    assert sr.squash(two) == sr.one
    assert sr.negate(two) == sr.zero


@pytest.mark.parametrize("sr", [BOOL, NAT, NAT_INF],
                         ids=lambda s: s.name)
def test_from_int_is_homomorphic(sr):
    for a in range(4):
        for b in range(4):
            assert sr.from_int(a + b) == sr.add(sr.from_int(a),
                                                sr.from_int(b))
            assert sr.from_int(a * b) == sr.mul(sr.from_int(a),
                                                sr.from_int(b))


def test_from_int_rejects_negative():
    for sr in STANDARD_SEMIRINGS:
        with pytest.raises(ValueError):
            sr.from_int(-1)


def test_from_bool():
    assert NAT.from_bool(True) == 1
    assert NAT.from_bool(False) == 0
    assert BOOL.from_bool(True) is True


def test_sum_and_product():
    assert NAT.sum([1, 2, 3]) == 6
    assert NAT.product([2, 3, 4]) == 24
    assert BOOL.sum([False, False]) is False
    assert BOOL.sum([False, True]) is True


def test_nat_inf_omega_accessible():
    assert NAT_INF.omega.is_infinite
    assert NAT_INF.add(NAT_INF.omega, NAT_INF.one) == OMEGA
    assert NAT_INF.mul(NAT_INF.zero, NAT_INF.omega) == Cardinal(0)


def test_tropical_interpretation():
    # Tropical "addition" is min (choice of cheaper derivation), tropical
    # "multiplication" is + (cost accumulation).
    assert TROPICAL.add(Fraction(3), Fraction(5)) == Fraction(3)
    assert TROPICAL.mul(Fraction(3), Fraction(5)) == Fraction(8)
    assert TROPICAL.is_zero(TROPICAL.INF)


@given(st.integers(0, 30), st.integers(0, 30))
def test_bool_is_squash_of_nat(a, b):
    # The classic K-relation fact: set semantics is the squash image of
    # bag semantics.
    assert BOOL.from_int(a + b) == BOOL.add(BOOL.from_int(a),
                                            BOOL.from_int(b))
    assert BOOL.from_int(a * b) == BOOL.mul(BOOL.from_int(a),
                                            BOOL.from_int(b))
