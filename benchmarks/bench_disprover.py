#!/usr/bin/env python
"""Compiled, sharded bounded-disprover benchmarks.

Measures the PR 10 disprover against the PR 9 baseline on one grid of
bounded-exhaustive searches, under **both** term-kernel backends:

* **interpreter** — ``use_compiled=False``: the tree-walking Figure-7
  evaluator with the PR 9 analysis prunes on.  This is exactly the
  search the previous PR shipped.
* **compiled** — ``use_compiled=True, workers=1``: the flat-program
  evaluator over cached struct-of-arrays instance batches.
* **parallel** — ``use_compiled=True, workers=4``: the compiled search
  sharded across a process pool (witness must be bit-identical to the
  serial rows; pool startup amortizes only on large grids, so its wall
  is recorded but not gated).

The grid mixes witness-producing pairs (DISTINCT vs not over a join —
the counterexample needs duplicate join output, deep in the
enumeration order) with equivalent pairs (the search must exhaust the
entire instance space).  All three configurations must agree exactly on
(found, witness index, instances checked, exhausted) for every pair —
the differential guarantee — and the compiled row must beat the
interpreter row by :data:`DISPROVER_SPEEDUP_TARGET` in full mode.

Usage::

    PYTHONPATH=src python benchmarks/bench_disprover.py [--smoke] [--json]
"""

import argparse
import json
import sys
import time

from repro.core.intern import set_kernel_backend
from repro.core.schema import INT
from repro.solver import Bound, disprove
from repro.sql import Catalog, compile_sql

#: Minimum wall-clock speedup of the compiled serial search over the
#: PR 9 interpreter baseline, enforced per kernel backend in full mode.
#: (The PR's own acceptance target is 10x; 5x is the regression gate.)
DISPROVER_SPEEDUP_TARGET = 5.0


def _catalog():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    cat.add_table("S", [("a", INT), ("b", INT)])
    return cat


def _corpus(smoke):
    """(sql1, sql2, bound) grid rows: witness hunts + full exhaustions."""
    bound = Bound.of(2, 2) if smoke else Bound.of(4, 2)
    join = "SELECT r.a FROM R r, S s WHERE r.a = s.a"
    pairs = [
        # DISTINCT-sensitivity: the witness needs duplicated join output.
        (join, "SELECT DISTINCT r.a FROM R r, S s WHERE r.a = s.a", bound),
        # Equivalent alpha-variants: exhausts the whole two-table space.
        ("SELECT r.a, s.b FROM R r, S s WHERE r.a = s.b",
         "SELECT x.a, y.b FROM R x, S y WHERE x.a = y.b", bound),
    ]
    if not smoke:
        pairs.append(
            # Projection swap: disagrees only on asymmetric instances.
            ("SELECT r.a FROM R r, S s WHERE r.b = s.b",
             "SELECT r.b FROM R r, S s WHERE r.a = s.a", bound))
    return pairs


def _run_grid(pairs, catalog, **knobs):
    compiled_pairs = [(compile_sql(a, catalog).query,
                       compile_sql(b, catalog).query, bound)
                      for a, b, bound in pairs]
    started = time.perf_counter()
    rows = []
    instances = 0
    for q1, q2, bound in compiled_pairs:
        result = disprove(q1, q2, bound=bound, **knobs)
        instances += result.instances_checked
        rows.append({
            "found": result.found,
            "witness": (result.counterexample.trial
                        if result.found else None),
            "instances_checked": result.instances_checked,
            "exhausted": result.exhausted,
        })
    return {
        "wall_seconds": time.perf_counter() - started,
        "instances": instances,
        "rows": rows,
    }


def _run_backend(smoke, catalog):
    pairs = _corpus(smoke)
    interp = _run_grid(pairs, catalog, use_compiled=False)
    compiled = _run_grid(pairs, catalog, use_compiled=True)
    parallel = _run_grid(pairs, catalog, use_compiled=True, workers=4)
    mismatches = sum(1 for a, b, c in zip(interp["rows"], compiled["rows"],
                                          parallel["rows"])
                     if not (a == b == c))
    return {
        "pairs": len(pairs),
        "interp_seconds": interp["wall_seconds"],
        "compiled_seconds": compiled["wall_seconds"],
        "parallel_seconds": parallel["wall_seconds"],
        "instances": interp["instances"],
        "compiled_speedup": (interp["wall_seconds"]
                             / compiled["wall_seconds"]
                             if compiled["wall_seconds"] else float("inf")),
        "parallel_speedup": (interp["wall_seconds"]
                             / parallel["wall_seconds"]
                             if parallel["wall_seconds"] else float("inf")),
        "verdict_mismatches": mismatches,
        "rows": interp["rows"],
    }


def run(smoke=False):
    started = time.perf_counter()
    catalog = _catalog()
    backends = {}
    for backend in ("arena", "object"):
        previous = set_kernel_backend(backend)
        try:
            backends[backend] = _run_backend(smoke, catalog)
        finally:
            set_kernel_backend(previous)
    return {
        "wall_seconds": time.perf_counter() - started,
        "backends": backends,
    }


def check(result, smoke):
    """Gate failures (list of messages); speedups ungated in smoke mode."""
    failures = []
    for backend, row in result["backends"].items():
        if row["verdict_mismatches"]:
            failures.append(
                f"disprover[{backend}]: {row['verdict_mismatches']} "
                f"pair(s) where interpreter / compiled / parallel "
                f"disagree on the verdict or witness")
        if not smoke and row["compiled_speedup"] < DISPROVER_SPEEDUP_TARGET:
            failures.append(
                f"disprover[{backend}]: compiled speedup "
                f"{row['compiled_speedup']:.2f}x below the "
                f"{DISPROVER_SPEEDUP_TARGET:.1f}x target")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small bound, no speedup gating")
    parser.add_argument("--json", action="store_true",
                        help="print the result payload as JSON")
    args = parser.parse_args(argv)
    result = run(smoke=args.smoke)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        for backend, row in result["backends"].items():
            print(f"{backend}: {row['instances']} instances / "
                  f"{row['pairs']} pairs — interp "
                  f"{row['interp_seconds'] * 1e3:.0f} ms, compiled "
                  f"{row['compiled_seconds'] * 1e3:.0f} ms "
                  f"({row['compiled_speedup']:.1f}x), parallel(4) "
                  f"{row['parallel_seconds'] * 1e3:.0f} ms "
                  f"({row['parallel_speedup']:.1f}x), "
                  f"{row['verdict_mismatches']} mismatch(es)")
    failures = check(result, args.smoke)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
