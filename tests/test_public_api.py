"""Public-API snapshot: additions and removals must be deliberate.

A failure here means the package surface changed.  If the change is
intentional, update the checked-in lists *and* the README migration
notes; if not, you just caught an accidental API break.
"""

import repro
import repro.session


REPRO_ALL = [
    "BOOL",
    "BatchReport",
    "Bound",
    "Catalog",
    "Database",
    "EMPTY",
    "FDConstraint",
    "Hypotheses",
    "INT",
    "Interpretation",
    "Job",
    "KRelation",
    "KeyConstraint",
    "NAT",
    "NAT_INF",
    "PROVENANCE",
    "PairResult",
    "PairwiseReport",
    "Pipeline",
    "PipelineConfig",
    "PlanHandle",
    "ProofCache",
    "QueryHandle",
    "ReproError",
    "STRING",
    "SVar",
    "Schema",
    "Session",
    "SessionError",
    "Status",
    "TableSpecError",
    "Verdict",
    "VerificationService",
    "__version__",
    "all_rules",
    "ast",
    "check_query_equivalence",
    "compile_sql",
    "cq_equivalent",
    "decide_cq",
    "denote_closed",
    "get_rule",
    "obs",
    "queries_equivalent",
    "query_to_str",
    "rules_by_category",
    "run_query",
]

SESSION_ALL = [
    "PairResult",
    "PairwiseReport",
    "PlanHandle",
    "QueryHandle",
    "Session",
    "SessionError",
    "TableSpecError",
    "parse_table_spec",
    "render_table_spec",
]


def test_repro_all_snapshot():
    assert sorted(repro.__all__) == REPRO_ALL


def test_session_all_snapshot():
    assert sorted(repro.session.__all__) == SESSION_ALL


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None
    for name in repro.session.__all__:
        assert getattr(repro.session, name) is not None
