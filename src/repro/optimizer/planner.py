"""Cost-based plan search over certified rewrites.

One ``optimize()`` front door, two search strategies:

* ``strategy="saturation"`` (the default) — equality saturation: insert
  the plan into an e-graph over the interned AST
  (:mod:`repro.optimizer.egraph`), run the certified rule suite at every
  e-class to fixpoint or budget (:mod:`repro.optimizer.saturate`), then
  extract the cheapest representable tree with the Pareto extractor
  (:mod:`repro.optimizer.extract`).  Because e-classes deduplicate the
  plan space, saturation explores strictly more distinct plans than BFS
  at equal node budget, and deep rule chains (pushdown → dedup →
  pushdown …) that breadth-first search misses under its cap become
  reachable.
* ``strategy="bfs"`` — the historical Exodus/Volcano-style fallback (the
  lineage the paper reviews in Sec. 6.1): breadth-first exploration of
  the term rewrite space under a ``max_plans`` cap.

Both strategies end the same way — the point of the whole exercise —
with *certification* of the chosen plan against the original query
through the verification pipeline.  Every transformation is an instance
of a rule proved sound by the engine, so certification should never
fail; it is belt-and-braces, and the test suite asserts it holds on a
corpus of optimizer workloads for both strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Set, Tuple

from ..analysis.infer import AnalysisContext
from ..core import ast
from ..core.equivalence import Hypotheses, NO_HYPOTHESES
from ..core.intern import KernelLRU
from .cost import TableStats, plan_cost, plan_size
from .eanalysis import guarded_rules
from .egraph import EGraph
from .extract import PLAN_COUNT_LIMIT, count_plans, extract_best
from .rewriter import rewrites
from .saturate import ERULES, SaturationBudget, SaturationStats, saturate

#: Strategy names accepted by :func:`optimize`.
STRATEGIES = ("saturation", "bfs")

#: Process-wide plan cache (prepared-statement style): plan search is a
#: pure function of (interned query, strategy, table statistics, budget),
#: so re-optimizing the same query — a session replaying a prepared
#: statement, or the benchmark harness timing warm passes — reuses the
#: searched plan instead of re-saturating the e-graph.  Certification is
#: *not* cached here; it goes through the verification pipeline's own
#: proof cache.  Registered as a kernel cache, so it shows up in
#: ``kernel_stats()`` (``plan_hits``/``plan_misses``) and is dropped by
#: ``clear_kernel_caches()`` alongside the other memo tables.
_PLAN_MEMO = KernelLRU(256, "plan")


def _stats_fingerprint(stats: TableStats) -> tuple:
    """Value-based key for ``TableStats`` (its dict is mutable)."""
    return tuple(sorted(stats.cardinalities.items()))


def _plan_size(node: object) -> int:
    """Back-compat alias; the metric now lives in :mod:`.cost`."""
    return plan_size(node)


@dataclass
class PlanningResult:
    """Outcome of plan search (either strategy)."""

    original: ast.Query
    best_plan: ast.Query
    original_cost: float
    best_cost: float
    #: distinct plans considered: enumerated plans for BFS; distinct
    #: plans *representable in the e-graph* for saturation (clamped at
    #: :data:`PLAN_COUNT_LIMIT` — cyclic e-classes are infinite).
    plans_explored: int
    applied_rules: Tuple[str, ...]
    certified: Optional[bool]
    #: which search produced this result.
    strategy: str = "bfs"
    #: saturation-only diagnostics (None for BFS).
    saturation: Optional[SaturationStats] = None

    @property
    def improved(self) -> bool:
        return self.best_cost < self.original_cost

    @property
    def saturated(self) -> bool:
        """True when the rule set reached fixpoint (saturation only)."""
        return self.saturation is not None and self.saturation.saturated


def optimize(query: ast.Query, stats: TableStats, max_plans: int = 400,
             certify: bool = True, pipeline=None, *,
             strategy: str = "saturation",
             iterations: Optional[int] = None,
             node_budget: Optional[int] = None,
             workers: Optional[int] = None,
             hypotheses: Hypotheses = NO_HYPOTHESES,
             analysis: Optional[AnalysisContext] = None) -> PlanningResult:
    """Search the rewrite space for the cheapest equivalent plan.

    Args:
        query: the initial (core HoTTSQL) plan.
        stats: base-table cardinalities for the cost model.
        max_plans: exploration budget — BFS plan cap, and the default
            e-node budget for saturation when ``node_budget`` is unset
            (so the two strategies are comparable at equal budget).
        certify: when True, prove ``best ≡ original`` with the
            equivalence engine before returning.
        pipeline: the :class:`~repro.solver.pipeline.Pipeline` to certify
            through (a session passes its own, so the proof lands in the
            session's cache); defaults to the process-wide pipeline.
        strategy: ``"saturation"`` (default) or ``"bfs"``.
        iterations: saturation iteration budget (rewrite depth);
            defaults to :class:`SaturationBudget`'s.
        node_budget: saturation e-node budget; defaults to ``max_plans``.
        workers: fan saturation's match phase across N pool processes
            (saturation only; results identical to serial — see
            :func:`repro.optimizer.saturate.saturate`).
        hypotheses: integrity-constraint hypotheses the plan may assume.
            They seed the static analysis (a keyed table is set-valued,
            licensing ``distinct_elim_under_key``) and are passed to the
            certification pipeline so key-dependent extractions are
            still re-proved.
        analysis: an explicit :class:`~repro.analysis.infer
            .AnalysisContext` overriding the one derived from
            ``hypotheses`` (callers that know concrete key paths or
            table cardinality bounds can hand them over).

    Returns:
        The chosen plan with costs, exploration counters, the chain of
        rule names that produced it (reconstructed from e-graph
        provenance under saturation), and the certification verdict.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} "
                         f"(expected one of {STRATEGIES})")
    ctx = analysis if analysis is not None \
        else AnalysisContext.from_hypotheses(hypotheses)
    key = (query, strategy, _stats_fingerprint(stats), max_plans,
           iterations, node_budget, ctx)  # workers never changes the result
    cached = _PLAN_MEMO.get(key)
    if cached is not None:
        # Hand the caller a fresh instance: ``certified`` is mutable and
        # must not leak between callers with different ``certify`` flags.
        result = replace(cached)
    elif strategy == "saturation":
        result = _optimize_saturation(query, stats, max_plans=max_plans,
                                      iterations=iterations,
                                      node_budget=node_budget,
                                      workers=workers, ctx=ctx)
        _PLAN_MEMO.put(key, replace(result))
    else:
        result = _optimize_bfs(query, stats, max_plans=max_plans)
        _PLAN_MEMO.put(key, replace(result))

    if certify:
        # Certification runs through a verification pipeline so that the
        # proof lands in (and may come from) its proof cache — the
        # caller's own (a Session's) or the process-wide default.  The
        # hypotheses ride along: a keyed-dedup extraction is only
        # provable under its key axiom.
        if pipeline is None:
            from ..solver.pipeline import default_pipeline
            pipeline = default_pipeline()
        result.certified = pipeline.certify(query, result.best_plan,
                                            None, hypotheses)
    return result


# ---------------------------------------------------------------------------
# Equality saturation
# ---------------------------------------------------------------------------

def _optimize_saturation(query: ast.Query, stats: TableStats, *,
                         max_plans: int, iterations: Optional[int],
                         node_budget: Optional[int],
                         workers: Optional[int] = None,
                         ctx: Optional[AnalysisContext] = None
                         ) -> PlanningResult:
    defaults = SaturationBudget()
    budget = SaturationBudget(
        max_iterations=(iterations if iterations is not None
                        else defaults.max_iterations),
        max_nodes=(node_budget if node_budget is not None else max_plans))
    egraph = EGraph()
    root = egraph.add_term(query)
    egraph.rebuild()
    # The syntactic suite plus the property-guarded rewrites: the guards
    # consult the e-class analysis (and the analysis context seeded from
    # the caller's hypotheses), so e.g. ``DISTINCT q`` collapses onto
    # ``q`` only when the facts license it.
    rules = ERULES + guarded_rules(
        ctx if ctx is not None else AnalysisContext())
    sat_stats = saturate(egraph, rules=rules, budget=budget,
                         workers=workers)
    extraction = extract_best(egraph, root, stats)
    origin_cost = plan_cost(query, stats)
    best_plan, best_cost = extraction.plan, extraction.estimate.cost
    chain = extraction.chain
    if best_cost > origin_cost or (best_cost == origin_cost
                                   and extraction.size > plan_size(query)):
        # Guard (should not trigger): the original is representable, so
        # extraction can never do worse than it.
        best_plan, best_cost, chain = query, origin_cost, ()
    elif best_plan == query:
        # Unchanged plan: a licence union elsewhere in the e-graph must
        # not show up as an applied rule.
        chain = ()
    return PlanningResult(
        original=query, best_plan=best_plan, original_cost=origin_cost,
        best_cost=best_cost,
        plans_explored=count_plans(egraph, root, PLAN_COUNT_LIMIT),
        applied_rules=chain, certified=None,
        strategy="saturation", saturation=sat_stats)


# ---------------------------------------------------------------------------
# Breadth-first fallback (the historical Volcano path)
# ---------------------------------------------------------------------------

def _optimize_bfs(query: ast.Query, stats: TableStats, *,
                  max_plans: int) -> PlanningResult:
    origin_cost = plan_cost(query, stats)
    seen: Set[ast.Query] = {query}
    frontier: List[Tuple[ast.Query, Tuple[str, ...]]] = [(query, ())]
    best_plan, best_cost, best_rules = query, origin_cost, ()
    best_size = plan_size(query)
    explored = 1

    while frontier and explored < max_plans:
        next_frontier: List[Tuple[ast.Query, Tuple[str, ...]]] = []
        for plan, rules in frontier:
            for candidate, rule in rewrites(plan):
                if candidate in seen:
                    continue
                seen.add(candidate)
                explored += 1
                cost = plan_cost(candidate, stats)
                chain = rules + (rule,)
                size = plan_size(candidate)
                # Equal-cost plans tie-break on syntactic size, so a
                # simplification the cost model is blind to (dedup'd
                # conjuncts, say) still wins over the bloated original.
                if cost < best_cost or (cost == best_cost
                                        and size < best_size):
                    best_plan, best_cost, best_rules = candidate, cost, chain
                    best_size = size
                next_frontier.append((candidate, chain))
                if explored >= max_plans:
                    break
            if explored >= max_plans:
                break
        frontier = next_frontier

    return PlanningResult(
        original=query, best_plan=best_plan, original_cost=origin_cost,
        best_cost=best_cost, plans_explored=explored,
        applied_rules=best_rules, certified=None, strategy="bfs")
