"""The library's front door: :class:`Session` and :class:`QueryHandle`.

Everything the reproduction can do — compile SQL, normalize, prove,
disprove, optimize, batch-verify — used to require juggling ``Catalog``,
``compile_sql``, ``Pipeline``, ``VerificationService``, and ``optimize``
by hand.  A session owns all of them behind one fluent surface::

    from repro import Session

    with Session.from_tables("R(a:int,b:int)", cache="proofs.json") as s:
        q1 = s.sql("SELECT DISTINCT a FROM R")
        q2 = s.sql("SELECT DISTINCT x.a FROM R AS x, R AS y "
                   "WHERE x.a = y.a")
        verdict = q1.equivalent_to(q2)        # PROVED
        plan = q1.optimize()                  # certified PlanHandle
        print(plan.explain(), plan.sql())
        report = s.check_all_pairs()          # O(N) normalizations

The performance story is the point, not just the ergonomics: a
:class:`QueryHandle` memoizes its compilation, denotation, normal form,
and canonical alpha key (a :class:`~repro.solver.pipeline
.NormalizedQuery`) the first time they are needed, and every subsequent
check feeds the *pre-normalized* forms into
:meth:`~repro.solver.pipeline.Pipeline.check_normalized`.  An all-pairs
workload over N queries therefore performs exactly N normalizations where
the naive per-pair :meth:`~repro.solver.pipeline.Pipeline.check` performs
N·(N−1) — the O(N²)→O(N) collapse ``benchmarks/bench_session_all_pairs
.py`` measures.

The session is a context manager: leaving the ``with`` block persists the
proof cache (when a cache path is configured) and tears down the batch
service's worker pool.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .core import ast
from .core.equivalence import Hypotheses, NO_HYPOTHESES
from .core.schema import BOOL, FLOAT, INT, SQLType, STRING
from .errors import ReproError, SchemaMismatchError
from .optimizer.cost import TableStats
from .optimizer.explain import explain, explain_result
from .optimizer.planner import PlanningResult, optimize
from .solver.cache import ProofCache
from .solver.disprover import Bound, DisproofResult, disprove
from .solver.pipeline import NormalizedQuery, Pipeline, PipelineConfig
from .solver.service import BatchReport, Job, VerificationService
from .solver.verdict import Status, Verdict
from .sql.decompile import plan_to_sql
from .sql.lexer import tokenize
from .sql.resolve import Catalog, Resolved, compile_sql


class SessionError(ReproError):
    """Raised on misuse of the session surface (closed session, foreign
    handles, malformed table specs)."""


class TableSpecError(SessionError):
    """Raised for a malformed ``"R(a:int,b:int)"`` table declaration."""


# ---------------------------------------------------------------------------
# Table specs — the "R(a:int,b:int)" mini-grammar shared with the CLI
# ---------------------------------------------------------------------------

_TYPES: Dict[str, SQLType] = {"int": INT, "bool": BOOL, "string": STRING,
                              "float": FLOAT}

_TYPE_NAMES = {ty: name for name, ty in _TYPES.items()}


def render_table_spec(name: str, columns: Sequence) -> str:
    """The canonical ``"R(a:int,b:int)"`` spec of a (name, columns) pair
    (the wire format a remote session forwards to ``repro serve``)."""
    parts = []
    for col, ty in columns:
        parts.append(f"{col}:{_TYPE_NAMES.get(ty, str(ty).lower())}")
    return f"{name}({','.join(parts)})"


_TABLE_RE = re.compile(r"^(\w+)\((.*)\)$")


def parse_table_spec(spec: str) -> Tuple[str, List[Tuple[str, SQLType]]]:
    """Parse ``R(a:int,b:int)`` into a (name, columns) pair."""
    match = _TABLE_RE.match(spec.strip())
    if not match:
        raise TableSpecError(f"malformed table spec {spec!r} "
                             f"(expected NAME(col:type,...))")
    name, cols_text = match.groups()
    columns: List[Tuple[str, SQLType]] = []
    seen = set()
    for part in cols_text.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" not in part:
            raise TableSpecError(f"malformed column {part!r} in {spec!r}")
        col, ty = (x.strip() for x in part.split(":", 1))
        if ty not in _TYPES:
            raise TableSpecError(f"unknown type {ty!r} "
                                 f"(use int/bool/string/float)")
        if col in seen:
            raise TableSpecError(f"duplicate column {col!r} "
                                 f"in table {name!r}")
        seen.add(col)
        columns.append((col, _TYPES[ty]))
    if not columns:
        raise TableSpecError(f"table {name!r} needs at least one column")
    return name, columns


# ---------------------------------------------------------------------------
# Handles
# ---------------------------------------------------------------------------

#: "argument not given" marker where None is itself meaningful.
_UNSET = object()


class QueryHandle:
    """An immutable compiled query bound to its session.

    Construction (via :meth:`Session.sql`) pays parsing and resolution
    once; the denotation, normal form, and cache keys are computed lazily
    on first use and memoized for every later check.  Handles compare and
    hash by their compiled core query, so structurally identical SQL from
    different texts collapses in sets and dict keys.
    """

    __slots__ = ("_session", "_text", "_resolved", "_pre")

    def __init__(self, session: "Session", text: Optional[str],
                 resolved: Resolved) -> None:
        self._session = session
        self._text = text
        self._resolved = resolved
        self._pre: Optional[NormalizedQuery] = None

    # -- identity -----------------------------------------------------------

    @property
    def session(self) -> "Session":
        return self._session

    @property
    def text(self) -> Optional[str]:
        """The SQL this handle was compiled from (None for plan handles)."""
        return self._text

    @property
    def query(self) -> ast.Query:
        """The compiled core HoTTSQL query."""
        return self._resolved.query

    @property
    def schema(self):
        return self._resolved.schema

    @property
    def columns(self):
        return self._resolved.columns

    def __eq__(self, other) -> bool:
        if not isinstance(other, QueryHandle):
            return NotImplemented
        return self.query == other.query

    def __hash__(self) -> int:
        return hash(self.query)

    def __repr__(self) -> str:
        label = self._text if self._text is not None else repr(self.query)
        return f"QueryHandle({label!r})"

    # -- memoized normal form ----------------------------------------------

    @property
    def normalized(self) -> NormalizedQuery:
        """The memoized pre-normalized form (computed on first access)."""
        if self._pre is None:
            self._pre = NormalizedQuery.of(self.query)
        return self._pre

    # -- fluent verbs -------------------------------------------------------

    def equivalent_to(self, other: Union["QueryHandle", str],
                      hyps: Hypotheses = NO_HYPOTHESES) -> Verdict:
        """Decide equivalence through the session's tiered pipeline.

        On a session opened with :meth:`Session.connect` the question is
        answered by the remote ``repro serve`` daemon (and its shared
        proof store) instead of the local pipeline.
        """
        other = self._session._coerce(other)
        if self._session.is_remote:
            return self._session._remote_check(self, other, hyps)
        return self._session.pipeline.check_normalized(
            self.normalized, other.normalized, hyps)

    def disprove(self, other: Union["QueryHandle", str], *,
                 bound: Optional[Bound] = None,
                 max_instances: Union[int, None, object] = _UNSET,
                 hyps: Hypotheses = NO_HYPOTHESES,
                 workers: Optional[int] = None,
                 batch_size: Optional[int] = None) -> DisproofResult:
        """Bounded-exhaustive counterexample search against ``other``.

        ``max_instances`` defaults to the session config's budget; pass
        ``None`` explicitly for an unbounded search.  ``workers`` /
        ``batch_size`` default to the session config's sharding knobs.
        """
        other = self._session._coerce(other)
        cfg = self._session.pipeline.config
        return disprove(
            self.query, other.query,
            bound=bound if bound is not None else cfg.disprover_bound,
            max_instances=(cfg.disprover_max_instances
                           if max_instances is _UNSET else max_instances),
            hyps=hyps,
            workers=workers if workers is not None
            else cfg.disprover_workers,
            batch_size=batch_size if batch_size is not None
            else cfg.disprover_batch_size)

    def optimize(self, stats: Optional[TableStats] = None, *,
                 strategy: str = "saturation", max_plans: int = 400,
                 iterations: Optional[int] = None,
                 node_budget: Optional[int] = None,
                 certify: bool = True) -> "PlanHandle":
        """Cost-based plan search; certification runs through the
        session's pipeline (and proof cache).

        ``strategy`` selects equality saturation (default) or the BFS
        fallback; ``iterations`` / ``node_budget`` bound the saturation
        search (``node_budget`` defaults to ``max_plans``, so the two
        strategies are comparable at equal budget).
        """
        stats = stats if stats is not None else TableStats()
        result = optimize(self.query, stats, max_plans=max_plans,
                          certify=certify,
                          pipeline=self._session.pipeline,
                          strategy=strategy, iterations=iterations,
                          node_budget=node_budget)
        return PlanHandle(self, result, stats)

    def explain(self, stats: Optional[TableStats] = None) -> str:
        """EXPLAIN rendering of this query as a plan."""
        return explain(self.query, stats if stats is not None
                       else TableStats())

    def sql(self) -> str:
        """The compiled core query decompiled back to SQL text.

        This is the post-desugar view: GROUP BY, HAVING, and scalar
        aggregates render in their Sec. 4.2 encodings (and the text
        re-parses — the session test suite proves the round trip
        equivalent).  Raises
        :class:`~repro.sql.decompile.PlanRenderingError` when the query
        falls outside the SQL-renderable fragment.
        """
        return plan_to_sql(self.query, self._session.catalog)


class PlanHandle:
    """An optimized plan: the planner's result plus rendering verbs."""

    __slots__ = ("_source", "result", "stats")

    def __init__(self, source: QueryHandle, result: PlanningResult,
                 stats: TableStats) -> None:
        self._source = source
        self.result = result
        self.stats = stats

    @property
    def source(self) -> QueryHandle:
        return self._source

    @property
    def session(self) -> "Session":
        return self._source.session

    @property
    def plan(self) -> ast.Query:
        return self.result.best_plan

    @property
    def certified(self) -> Optional[bool]:
        return self.result.certified

    @property
    def improved(self) -> bool:
        return self.result.improved

    @property
    def cost(self) -> float:
        return self.result.best_cost

    @property
    def applied_rules(self) -> Tuple[str, ...]:
        return self.result.applied_rules

    @property
    def strategy(self) -> str:
        return self.result.strategy

    def explain(self) -> str:
        """EXPLAIN rendering of the chosen plan: the certified rewrite
        chain and search counters, then the per-node cost tree."""
        return explain_result(self.result, self.stats)

    def sql(self) -> str:
        """The chosen plan decompiled back to SQL text.

        Raises :class:`~repro.sql.decompile.PlanRenderingError` when the
        plan falls outside the SQL-renderable fragment.
        """
        return plan_to_sql(self.plan, self.session.catalog)

    def handle(self) -> QueryHandle:
        """The optimized plan as a first-class query handle."""
        return QueryHandle(
            self.session, None,
            Resolved(self.plan, self._source.schema, self._source.columns))

    def __repr__(self) -> str:
        return (f"PlanHandle(cost={self.cost:.1f}, "
                f"rules={list(self.applied_rules)}, "
                f"certified={self.certified})")


# ---------------------------------------------------------------------------
# Pairwise reports
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PairResult:
    """One pair's verdict inside a :class:`PairwiseReport`."""

    left: QueryHandle
    right: QueryHandle
    verdict: Verdict


@dataclass
class PairwiseReport:
    """Verdicts for a pairwise workload plus batch accounting."""

    results: List[PairResult]
    #: handles that had to be normalized during this call (first touch).
    normalizations: int
    #: pairs answered straight from the proof cache.
    cache_hits: int
    #: distinct symmetric questions among the pairs.
    unique_questions: int
    wall_seconds: float
    hyps: Hypotheses = NO_HYPOTHESES

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def count(self, status: Status) -> int:
        return sum(1 for r in self.results if r.verdict.status is status)

    def equivalent_pairs(self) -> List[PairResult]:
        return [r for r in self.results if r.verdict.proved]

    def summary(self) -> str:
        return (f"{len(self.results)} pair(s): "
                f"{self.count(Status.PROVED)} proved, "
                f"{self.count(Status.DISPROVED)} disproved, "
                f"{self.count(Status.UNKNOWN)} unknown "
                f"[{self.unique_questions} unique, "
                f"{self.cache_hits} cache hit(s), "
                f"{self.normalizations} normalization(s), "
                f"{self.wall_seconds * 1e3:.1f} ms]")


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------

class Session:
    """One catalog, one pipeline, one proof cache, one worker pool.

    Args:
        catalog: table declarations (a fresh empty catalog by default).
        config: pipeline stage knobs (:class:`PipelineConfig`).
        cache: a pre-built :class:`ProofCache` to share, or a path string
            (treated exactly like ``cache_path``, matching
            :meth:`from_tables`).
        cache_path: JSON file to load the proof cache from and persist it
            to on :meth:`close` / context-manager exit.
        workers: default worker-process count for batch verification.
    """

    def __init__(self, catalog: Optional[Catalog] = None, *,
                 config: Optional[PipelineConfig] = None,
                 cache: Union[ProofCache, str, None] = None,
                 cache_path: Optional[str] = None,
                 workers: Optional[int] = None) -> None:
        if isinstance(cache, str):
            if cache_path is not None and cache_path != cache:
                raise SessionError(
                    f"conflicting cache paths: cache={cache!r} "
                    f"vs cache_path={cache_path!r}")
            cache, cache_path = None, cache
        elif cache is not None and not isinstance(cache, ProofCache):
            raise SessionError(
                f"cache must be a ProofCache or a path string, "
                f"got {type(cache).__name__}")
        self.catalog = catalog if catalog is not None else Catalog()
        self.pipeline = Pipeline(config, cache=cache, cache_path=cache_path)
        self.workers = workers
        self._cache_path = cache_path
        self._service: Optional[VerificationService] = None
        #: token-stream key (or raw text for unlexable input) → handle.
        self._handles: Dict[object, QueryHandle] = {}
        #: canonical "R(a:int,b:int)" specs, in declaration order — the
        #: catalog a remote session forwards with every request.
        self._table_specs: List[str] = []
        #: a connected ServeClient when opened via :meth:`connect`.
        self._remote: Optional[Any] = None
        self._closed = False

    @classmethod
    def from_tables(cls, *specs: str,
                    config: Optional[PipelineConfig] = None,
                    cache: Optional[str] = None,
                    workers: Optional[int] = None) -> "Session":
        """Build a session from ``"R(a:int,b:int)"``-style declarations.

        ``cache`` is a JSON path: loaded now if it exists, persisted on
        exit.
        """
        catalog = Catalog()
        session = cls(catalog, config=config, cache_path=cache,
                      workers=workers)
        for spec in specs:
            session.add_table(spec)
        return session

    @classmethod
    def connect(cls, address, *tables: str,
                timeout: float = 60.0,
                connect_retries: int = 20,
                config: Optional[PipelineConfig] = None) -> "Session":
        """Open a session whose checks run on a ``repro serve`` daemon.

        The fluent surface is unchanged — ``s.sql(...)`` still compiles
        and type-checks locally (malformed SQL fails fast, before any
        network round trip) — but :meth:`check`,
        :meth:`QueryHandle.equivalent_to`, and :meth:`check_pairs` are
        answered by the daemon at ``address`` (``"host:port"``), which
        owns the warm pipeline and the shared proof store::

            with Session.connect("127.0.0.1:7341",
                                 "R(a:int,b:int)") as s:
                verdict = s.check("SELECT a FROM R", "SELECT a FROM R")

        ``optimize``/``disprove``/batch verbs still run locally against
        this process's pipeline; the remote daemon serves equivalence
        verdicts only.
        """
        from .serve.client import ServeClient  # lazy: keeps import light
        session = cls(config=config)
        for spec in tables:
            session.add_table(spec)
        client = ServeClient(address, timeout=timeout,
                             connect_retries=connect_retries)
        client.connect()
        session._remote = client
        return session

    # -- catalog ------------------------------------------------------------

    def add_table(self, spec: Union[str, Tuple[str, Sequence]],
                  columns: Optional[Sequence] = None) -> "Session":
        """Declare a table: ``add_table("R(a:int,b:int)")`` or
        ``add_table("R", [("a", INT)])``.  Returns the session (chainable).
        """
        self._ensure_open()
        if columns is None:
            if isinstance(spec, str):
                name, columns = parse_table_spec(spec)
            else:
                name, columns = spec
        else:
            name = spec
        self.catalog.add_table(name, columns)
        self._table_specs.append(render_table_spec(name, columns))
        return self

    # -- compilation --------------------------------------------------------

    def sql(self, text: str) -> QueryHandle:
        """Compile SQL to a memoized :class:`QueryHandle`.

        Repeated calls with the same query text return the *same* handle
        (keyed on the token stream, so formatting differences collapse
        but string-literal contents are respected) and its memoized
        normal form is shared across every use site.
        """
        self._ensure_open()
        try:
            key = tuple((t.kind, t.text) for t in tokenize(text))
        except ReproError:
            key = text  # let compile_sql raise the real lex error below
        handle = self._handles.get(key)
        if handle is None:
            handle = QueryHandle(self, text, compile_sql(text, self.catalog))
            self._handles[key] = handle
        return handle

    @property
    def handles(self) -> List[QueryHandle]:
        """Every handle compiled by this session, in creation order."""
        return list(self._handles.values())

    def _coerce(self, query: Union[QueryHandle, str]) -> QueryHandle:
        if isinstance(query, QueryHandle):
            if query.session is not self:
                raise SessionError(
                    "handle belongs to a different session (its catalog "
                    "and cache are not this session's)")
            return query
        if isinstance(query, str):
            return self.sql(query)
        raise SessionError(f"expected SQL text or a QueryHandle, "
                           f"got {type(query).__name__}")

    # -- checking -----------------------------------------------------------

    @property
    def is_remote(self) -> bool:
        """True when checks are answered by a ``repro serve`` daemon."""
        return self._remote is not None

    @property
    def remote(self):
        """The underlying :class:`~repro.serve.client.ServeClient`
        (None on a local session)."""
        return self._remote

    def _remote_check(self, left: QueryHandle, right: QueryHandle,
                      hyps: Hypotheses) -> Verdict:
        if hyps.keys or hyps.fds:
            raise SessionError(
                "hypothetical equivalence is not supported on remote "
                "sessions; open a local Session for hypothesis checks")
        sql1 = left.text if left.text is not None else left.sql()
        sql2 = right.text if right.text is not None else right.sql()
        return self._remote.check(sql1, sql2, tables=self._table_specs)

    def check(self, q1: Union[QueryHandle, str], q2: Union[QueryHandle, str],
              hyps: Hypotheses = NO_HYPOTHESES) -> Verdict:
        """Decide one equivalence question through the tiered pipeline
        (or the connected daemon, on a remote session)."""
        return self._coerce(q1).equivalent_to(self._coerce(q2), hyps)

    def check_pairs(self, pairs: Iterable[Tuple[Union[QueryHandle, str],
                                                Union[QueryHandle, str]]],
                    hyps: Hypotheses = NO_HYPOTHESES) -> PairwiseReport:
        """Check many pairs, normalizing each distinct query only once.

        All pre-normalized forms stay in-process, so N queries cost N
        normalizations regardless of how many of the N² pairings are
        checked; duplicate and symmetric questions collapse in the proof
        cache.  A pair whose two queries have different output schemas is
        recorded as DISPROVED (stage ``schema``) rather than aborting the
        batch — no instance can make an ill-typed question true.
        """
        self._ensure_open()
        started = time.perf_counter()
        coerced = [(self._coerce(a), self._coerce(b)) for a, b in pairs]
        if self.is_remote:
            return self._remote_check_pairs(coerced, hyps, started)
        fresh = {id(h) for a, b in coerced for h in (a, b)
                 if h._pre is None}
        results: List[PairResult] = []
        fingerprints = set()
        cache_hits = 0
        for left, right in coerced:
            try:
                verdict = self.pipeline.check_normalized(
                    left.normalized, right.normalized, hyps)
            except SchemaMismatchError as exc:
                verdict = Verdict(status=Status.DISPROVED, stage="schema",
                                  detail=str(exc))
            else:
                fingerprints.add(verdict.fingerprint)
                cache_hits += verdict.cached
            results.append(PairResult(left, right, verdict))
        return PairwiseReport(
            results=results, normalizations=len(fresh),
            cache_hits=cache_hits, unique_questions=len(fingerprints),
            wall_seconds=time.perf_counter() - started, hyps=hyps)

    def _remote_check_pairs(self, coerced: List[Tuple[QueryHandle,
                                                      QueryHandle]],
                            hyps: Hypotheses,
                            started: float) -> PairwiseReport:
        """One ``batch-check`` round trip for a whole pairwise workload."""
        if hyps.keys or hyps.fds:
            raise SessionError(
                "hypothetical equivalence is not supported on remote "
                "sessions; open a local Session for hypothesis checks")
        texts = [(a.text if a.text is not None else a.sql(),
                  b.text if b.text is not None else b.sql())
                 for a, b in coerced]
        verdicts = self._remote.batch_check(texts,
                                            tables=self._table_specs)
        results = [PairResult(left, right, verdict)
                   for (left, right), verdict in zip(coerced, verdicts)]
        fingerprints = {v.fingerprint for v in verdicts if v.fingerprint}
        return PairwiseReport(
            results=results, normalizations=0,
            cache_hits=sum(v.cached for v in verdicts),
            unique_questions=len(fingerprints) or len({tuple(sorted(t))
                                                       for t in texts}),
            wall_seconds=time.perf_counter() - started, hyps=hyps)

    def check_all_pairs(self,
                        queries: Optional[Iterable[Union[QueryHandle, str]]]
                        = None,
                        hyps: Hypotheses = NO_HYPOTHESES) -> PairwiseReport:
        """Check every unordered pair of ``queries`` (default: every
        handle this session has compiled)."""
        handles = ([self._coerce(q) for q in queries]
                   if queries is not None else self.handles)
        pairs = [(handles[i], handles[j])
                 for i in range(len(handles))
                 for j in range(i + 1, len(handles))]
        return self.check_pairs(pairs, hyps)

    # -- batch service ------------------------------------------------------

    @property
    def service(self) -> VerificationService:
        """The batch verification service (worker pool is lazy)."""
        self._ensure_open()
        if self._service is None:
            self._service = VerificationService(pipeline=self.pipeline,
                                                workers=self.workers)
        return self._service

    def check_batch(self, jobs: Sequence[Job],
                    workers: Optional[int] = None) -> BatchReport:
        """Fan a batch of :class:`~repro.solver.service.Job`\\ s across the
        session's worker pool."""
        return self.service.check_batch(jobs, workers=workers)

    def check_rules(self, rules: Iterable,
                    workers: Optional[int] = None) -> BatchReport:
        """Verify a rewrite-rule corpus through the batch service."""
        return self.service.check_rules(rules, workers=workers)

    # -- cache & lifecycle --------------------------------------------------

    @property
    def cache(self) -> ProofCache:
        return self.pipeline.cache

    def kernel_stats(self) -> Dict[str, float]:
        """Interned-kernel and cache counters for this process + session.

        Interning and the normalize/denote memo tables are process-wide
        (canonical nodes are shared by every session); the proof-cache
        counters are this session's own.  ``check --verbose`` prints this
        next to the stage timings.
        """
        from .core.intern import kernel_stats as _kernel_stats
        stats: Dict[str, float] = dict(_kernel_stats())
        stats["proof_cache_entries"] = len(self.cache)
        stats["proof_cache_hits"] = self.cache.hits
        stats["proof_cache_misses"] = self.cache.misses
        stats["proof_cache_hit_rate"] = self.cache.hit_rate
        return stats

    def metrics(self) -> Dict[str, Any]:
        """Snapshot of the process-wide metrics registry.

        Everything the observability layer counts — per-tier latency
        histograms, verdict/cache/saturation counters — as one plain
        JSON-able dict (see :mod:`repro.obs.metrics` for the schema and
        the README's metric-name reference).  Batch runs fold worker
        deltas in here too, so after ``check_batch`` the snapshot covers
        work done in every worker process.
        """
        from .obs.metrics import REGISTRY
        return REGISTRY.snapshot()

    def save_cache(self, path: Optional[str] = None) -> str:
        """Persist the proof cache now (exit does this automatically when
        a cache path is configured)."""
        return self.cache.save(path)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Persist the cache (if a path is configured) and tear down the
        worker pool.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._remote is not None:
            self._remote.close()
            self._remote = None
        if self._service is not None:
            self._service.close()
            self._service = None
        if self._cache_path is not None:
            self.cache.save(self._cache_path)

    def __enter__(self) -> "Session":
        self._ensure_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        if self.is_remote:
            state = f"remote {self._remote.host}:{self._remote.port}, " \
                    f"{state}"
        return (f"Session({len(self.catalog.tables)} table(s), "
                f"{len(self._handles)} handle(s), "
                f"{len(self.cache)} cached verdict(s), {state})")


__all__ = [
    "PairResult",
    "PairwiseReport",
    "PlanHandle",
    "QueryHandle",
    "Session",
    "SessionError",
    "TableSpecError",
    "parse_table_spec",
    "render_table_spec",
]
