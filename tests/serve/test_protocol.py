"""Wire-protocol robustness: malformed input, oversized payloads,
dropped connections, graceful shutdown.  The invariant throughout: the
server answers with a typed error (or survives silently) — it never
tracebacks a connection to death."""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.protocol import ProtocolError, parse_address
from repro.serve.server import ReproServer

TABLES = ["R(a:int,b:int)"]
Q1 = "SELECT a FROM R"


@pytest.fixture
def server():
    srv = ReproServer(port=0, tables=TABLES).start()
    yield srv
    srv.shutdown()


def _raw_conn(server):
    sock = socket.create_connection(server.address, timeout=10.0)
    sock.settimeout(10.0)
    return sock


def _send_line(sock, line: bytes):
    sock.sendall(line)
    data = b""
    while not data.endswith(b"\n"):
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    return json.loads(data) if data else None


class TestMalformedRequests:
    def test_not_json(self, server):
        with _raw_conn(server) as sock:
            response = _send_line(sock, b"this is not json\n")
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-request"
            # The connection stays usable after the error.
            response = _send_line(sock, b'{"op": "ping"}\n')
            assert response["ok"] is True

    def test_not_an_object(self, server):
        with _raw_conn(server) as sock:
            response = _send_line(sock, b"[1, 2, 3]\n")
            assert response["error"]["code"] == "bad-request"

    def test_missing_op(self, server):
        with _raw_conn(server) as sock:
            response = _send_line(sock, b'{"sql1": "SELECT 1"}\n')
            assert response["error"]["code"] == "bad-request"

    def test_unknown_op(self, server):
        with _raw_conn(server) as sock:
            response = _send_line(sock, b'{"op": "frobnicate"}\n')
            assert response["error"]["code"] == "unknown-op"

    def test_bad_sql_is_compile_error(self, server):
        with _raw_conn(server) as sock:
            request = {"op": "check", "sql1": "SELEKT chaos",
                       "sql2": Q1, "tables": TABLES}
            response = _send_line(
                sock, json.dumps(request).encode() + b"\n")
            assert response["ok"] is False
            assert response["error"]["code"] == "compile-error"

    def test_bad_tables_type(self, server):
        with _raw_conn(server) as sock:
            request = {"op": "check", "sql1": Q1, "sql2": Q1,
                       "tables": "R(a:int)"}  # must be a list
            response = _send_line(
                sock, json.dumps(request).encode() + b"\n")
            assert response["error"]["code"] == "bad-request"

    def test_request_id_is_echoed(self, server):
        with _raw_conn(server) as sock:
            response = _send_line(sock, b'{"op": "ping", "id": 42}\n')
            assert response["ok"] is True and response["id"] == 42
            response = _send_line(sock, b'{"op": "nope", "id": "x"}\n')
            assert response["ok"] is False and response["id"] == "x"


class TestOversizedPayloads:
    def test_oversized_line_gets_typed_error_then_disconnect(self):
        server = ReproServer(port=0, tables=TABLES,
                             max_request_bytes=1024).start()
        try:
            with _raw_conn(server) as sock:
                huge = b'{"op": "check", "sql1": "' + b"x" * 4096
                sock.sendall(huge + b'", "sql2": "y"}\n')
                data = b""
                while not data.endswith(b"\n"):
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                response = json.loads(data)
                assert response["ok"] is False
                assert response["error"]["code"] == "too-large"
                # The stream cannot be resynchronized: the server then
                # closes the connection.
                sock.settimeout(5.0)
                assert sock.recv(65536) == b""
        finally:
            server.shutdown()

    def test_normal_requests_still_fine_under_cap(self):
        server = ReproServer(port=0, tables=TABLES,
                             max_request_bytes=1024).start()
        try:
            with ServeClient(server.address) as cli:
                assert cli.ping() is True
        finally:
            server.shutdown()


class TestClientDisconnect:
    def test_disconnect_mid_request_leaves_server_healthy(self, server):
        sock = _raw_conn(server)
        # Half a request, then vanish.
        sock.sendall(b'{"op": "check", "sql1": "SELECT')
        sock.close()
        time.sleep(0.1)
        with ServeClient(server.address) as cli:
            assert cli.ping() is True
            assert cli.check(Q1, Q1, tables=TABLES).proved

    def test_abrupt_reset_mid_stream(self, server):
        sock = _raw_conn(server)
        response = _send_line(sock, b'{"op": "ping"}\n')
        assert response["ok"] is True
        # RST instead of FIN: SO_LINGER with zero timeout.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        b"\x01\x00\x00\x00\x00\x00\x00\x00")
        sock.close()
        time.sleep(0.1)
        with ServeClient(server.address) as cli:
            assert cli.ping() is True


class TestShutdown:
    def test_inprocess_drain(self, server):
        with ServeClient(server.address) as cli:
            assert cli.check(Q1, Q1, tables=TABLES).proved
            assert cli.shutdown() is True
        deadline = time.time() + 10.0
        while not server._shutting_down.is_set() and \
                time.time() < deadline:
            time.sleep(0.05)
        assert server._shutting_down.is_set()
        with pytest.raises(ServeClientError):
            ServeClient(server.address, connect_retries=1,
                        timeout=2.0).connect().ping()

    def test_shutdown_is_idempotent(self):
        server = ReproServer(port=0, tables=TABLES).start()
        server.shutdown()
        server.shutdown()  # second call is a no-op

    def test_sigterm_drains_subprocess(self, tmp_path):
        """A real daemon process exits 0 on SIGTERM after serving."""
        repo_src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env = dict(os.environ, PYTHONPATH=repo_src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--table", "R(a:int,b:int)",
             "--store-dir", str(tmp_path / "store")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True)
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            address = parse_address(line.strip().rsplit(" ", 1)[-1])
            with ServeClient(address) as cli:
                assert cli.check(Q1, Q1, tables=TABLES).proved
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.1:7341") == ("10.0.0.1", 7341)

    def test_bare_port_defaults_host(self):
        assert parse_address(":7341") == ("127.0.0.1", 7341)

    def test_tuple_passthrough(self):
        assert parse_address(("h", 1)) == ("h", 1)

    def test_garbage_raises(self):
        with pytest.raises(ProtocolError):
            parse_address("no-port-here")
