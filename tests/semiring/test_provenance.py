"""Provenance polynomials: the free commutative semiring ℕ[X]."""

import pytest
from hypothesis import given, strategies as st

from repro.semiring.provenance import (
    PROVENANCE,
    Polynomial,
    annotate_distinctly,
)
from repro.semiring.semirings import BOOL, NAT


x = Polynomial.variable("x")
y = Polynomial.variable("y")


class TestArithmetic:
    def test_constants(self):
        assert Polynomial.constant(0) == Polynomial.zero()
        assert Polynomial.constant(1) == Polynomial.one()
        with pytest.raises(ValueError):
            Polynomial.constant(-1)

    def test_addition_collects_terms(self):
        assert str(x + x) == "2·x"

    def test_multiplication_merges_exponents(self):
        assert str(x * x) == "x^2"
        assert (x * y) == (y * x)

    def test_distribution(self):
        assert (x + y) * (x + y) == x * x + \
            Polynomial.constant(2) * x * y + y * y

    def test_zero_and_one(self):
        assert (x * Polynomial.zero()).is_zero
        assert x * Polynomial.one() == x
        assert x + Polynomial.zero() == x

    def test_variables_and_degree(self):
        p = x * x * y + Polynomial.constant(3)
        assert p.variables() == ("x", "y")
        assert p.degree() == 3
        assert Polynomial.zero().degree() == -1
        assert Polynomial.one().degree() == 0

    def test_str_rendering(self):
        assert str(Polynomial.zero()) == "0"
        assert str(Polynomial.constant(2) * x) == "2·x"


class TestEvaluationHomomorphism:
    def test_into_nat(self):
        p = x * x + Polynomial.constant(2) * y
        assert p.evaluate(NAT, {"x": 3, "y": 5}) == 19

    def test_into_bool(self):
        p = x * y
        assert p.evaluate(BOOL, {"x": True, "y": False}) is False
        assert p.evaluate(BOOL, {"x": True, "y": True}) is True

    def test_missing_assignment(self):
        with pytest.raises(KeyError):
            x.evaluate(NAT, {})

    polys = st.builds(
        lambda pairs: sum(
            (Polynomial.variable(v) * Polynomial.constant(c)
             for v, c in pairs), Polynomial.zero()),
        st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 3)),
                 max_size=4))

    @given(polys, polys, st.integers(0, 5), st.integers(0, 5),
           st.integers(0, 5))
    def test_evaluation_is_homomorphic(self, p, q, va, vb, vc):
        env = {"a": va, "b": vb, "c": vc}
        assert (p + q).evaluate(NAT, env) == \
            p.evaluate(NAT, env) + q.evaluate(NAT, env)
        assert (p * q).evaluate(NAT, env) == \
            p.evaluate(NAT, env) * q.evaluate(NAT, env)


class TestSemiringInterface:
    def test_fresh_variables(self):
        vs = PROVENANCE.fresh_variables("t", 3)
        assert len(set(vs)) == 3

    def test_annotate_distinctly(self):
        annotations = annotate_distinctly(["r1", "r2"], "R")
        assert annotations["r1"] != annotations["r2"]
        assert annotations["r1"].variables() == ("R_0",)

    def test_from_int(self):
        assert PROVENANCE.from_int(3) == Polynomial.constant(3)
