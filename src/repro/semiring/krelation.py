"""K-relations: relations annotated with semiring multiplicities.

A K-relation (paper Sec. 2) is a function from tuples to a commutative
semiring K.  This module gives a concrete, finitely-supported implementation
used by the evaluation engine: a mapping from (hashable) tuple values to
non-zero annotations.  All relational operators of the paper's semantics are
provided directly on K-relations:

====================  =========================================
SQL                    K-relation operation
====================  =========================================
``UNION ALL``          :meth:`KRelation.union_all`  (pointwise +)
``FROM R, S``          :meth:`KRelation.cross`       (pointwise ×)
``WHERE b``            :meth:`KRelation.select`      (× with indicator)
``SELECT p``           :meth:`KRelation.project`     (Σ over preimages)
``DISTINCT``           :meth:`KRelation.distinct`    (‖·‖)
``EXCEPT``             :meth:`KRelation.except_`     (× with negated ‖·‖)
====================  =========================================

Note that although the *support* is finite, the multiplicities themselves may
be infinite when K is :class:`~repro.semiring.semirings.NatInfSemiring` —
this is precisely the regime the paper's semantics adds over plain
K-relations, and the test suite uses it to reproduce the paper's Sec. 7
finite-vs-infinite discussion.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, Iterable, Iterator, Mapping, Tuple, TypeVar

from .semirings import NAT, Semiring

K = TypeVar("K")
Row = Any


class KRelation(Generic[K]):
    """A finitely-supported K-relation over an arbitrary semiring.

    Rows may be any hashable value; the evaluation engine uses nested pairs
    mirroring HoTTSQL's binary-tree tuples.  Annotations equal to the
    semiring zero are never stored, so ``supp(R) = set(R)``.
    """

    __slots__ = ("semiring", "_data")

    def __init__(self, semiring: Semiring[K],
                 data: Mapping[Row, K] | Iterable[Tuple[Row, K]] = ()) -> None:
        self.semiring = semiring
        self._data: Dict[Row, K] = {}
        items = data.items() if isinstance(data, Mapping) else data
        for row, annot in items:
            self._add_in_place(row, annot)

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_bag(cls, semiring: Semiring[K], rows: Iterable[Row]) -> "KRelation[K]":
        """Build from a bag of rows: each occurrence contributes ``one``."""
        rel = cls(semiring)
        for row in rows:
            rel._add_in_place(row, semiring.one)
        return rel

    @classmethod
    def empty(cls, semiring: Semiring[K]) -> "KRelation[K]":
        """The empty relation."""
        return cls(semiring)

    def add(self, row: Row, annot: K) -> None:
        """Accumulate ``annot`` onto ``row`` (semiring addition)."""
        self._add_in_place(row, annot)

    def _add_in_place(self, row: Row, annot: K) -> None:
        sr = self.semiring
        if sr.is_zero(annot):
            return
        if row in self._data:
            combined = sr.add(self._data[row], annot)
            if sr.is_zero(combined):
                del self._data[row]
            else:
                self._data[row] = combined
        else:
            self._data[row] = annot

    # -- observation ---------------------------------------------------------

    def annotation(self, row: Row) -> K:
        """The multiplicity of ``row`` (semiring zero when absent)."""
        return self._data.get(row, self.semiring.zero)

    def support(self) -> frozenset:
        """The set of rows with non-zero multiplicity."""
        return frozenset(self._data)

    def items(self) -> Iterator[Tuple[Row, K]]:
        """Iterate over (row, annotation) pairs in deterministic order."""
        return iter(sorted(self._data.items(), key=lambda kv: repr(kv[0])))

    def __iter__(self) -> Iterator[Row]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, row: Row) -> bool:
        return row in self._data

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KRelation):
            return NotImplemented
        return self.semiring is other.semiring and self._data == other._data

    def __hash__(self) -> int:
        return hash((id(self.semiring), frozenset(self._data.items())))

    def __repr__(self) -> str:
        entries = ", ".join(f"{row!r}:{annot!r}" for row, annot in self.items())
        return f"KRelation<{self.semiring.name}>{{{entries}}}"

    def total_multiplicity(self) -> K:
        """Σ over all rows of the annotation — the K-cardinality of the bag."""
        return self.semiring.sum(self._data.values())

    # -- relational algebra ---------------------------------------------------

    def union_all(self, other: "KRelation[K]") -> "KRelation[K]":
        """Bag union: pointwise semiring addition (paper: ``+``)."""
        self._check_compatible(other)
        out = KRelation(self.semiring, self._data)
        for row, annot in other._data.items():
            out._add_in_place(row, annot)
        return out

    def cross(self, other: "KRelation[K]") -> "KRelation[K]":
        """Cross product: pairs of rows with multiplied annotations (``×``)."""
        self._check_compatible(other)
        sr = self.semiring
        out = KRelation(sr)
        for r1, a1 in self._data.items():
            for r2, a2 in other._data.items():
                out._add_in_place((r1, r2), sr.mul(a1, a2))
        return out

    def select(self, predicate: Callable[[Row], bool]) -> "KRelation[K]":
        """Selection: multiply by the predicate's 0/1 indicator."""
        return KRelation(self.semiring,
                         {row: annot for row, annot in self._data.items()
                          if predicate(row)})

    def project(self, fn: Callable[[Row], Row]) -> "KRelation[K]":
        """Projection: Σ of annotations over each output row's preimage."""
        out = KRelation(self.semiring)
        for row, annot in self._data.items():
            out._add_in_place(fn(row), annot)
        return out

    def distinct(self) -> "KRelation[K]":
        """Duplicate elimination: squash every annotation (``‖·‖``)."""
        sr = self.semiring
        return KRelation(sr, {row: sr.squash(annot)
                              for row, annot in self._data.items()})

    def except_(self, other: "KRelation[K]") -> "KRelation[K]":
        """SQL ``EXCEPT`` per the paper: keep multiplicity iff absent in other.

        ``R EXCEPT S`` denotes ``λt. R(t) × (‖S(t)‖ → 0)`` — a tuple keeps its
        *full* multiplicity from R when it does not occur in S at all.
        """
        self._check_compatible(other)
        sr = self.semiring
        out = KRelation(sr)
        for row, annot in self._data.items():
            out._add_in_place(row, sr.mul(annot, sr.negate(other.annotation(row))))
        return out

    def scale(self, factor: K) -> "KRelation[K]":
        """Multiply every annotation by a constant (used in tests)."""
        sr = self.semiring
        return KRelation(sr, {row: sr.mul(annot, factor)
                              for row, annot in self._data.items()})

    def map_annotations(self, fn: Callable[[K], Any],
                        semiring: Semiring) -> "KRelation":
        """Apply a semiring homomorphism to every annotation.

        The fundamental property of K-relations: homomorphisms commute with
        the positive relational algebra.  The test suite checks this.
        """
        out = KRelation(semiring)
        for row, annot in self._data.items():
            out._add_in_place(row, fn(annot))
        return out

    def to_counter(self) -> Dict[Row, int]:
        """For Nat-relations: plain multiplicity dictionary (used by oracles)."""
        if self.semiring is not NAT:
            raise TypeError("to_counter is only meaningful for NAT relations")
        return dict(self._data)

    def _check_compatible(self, other: "KRelation[K]") -> None:
        if self.semiring is not other.semiring:
            raise TypeError(
                f"cannot combine relations over {self.semiring.name} "
                f"and {other.semiring.name}")
