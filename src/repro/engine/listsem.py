"""List-semantics evaluation — the prior-work baseline.

The paper argues (Sec. 2) against mechanizing SQL over *lists* of tuples,
the route taken by earlier verified-database work [Malecha et al. POPL'10;
Veanes et al.]: proofs about lists need induction, permutation reasoning,
and duplicate-elimination bookkeeping.  We implement that semantics anyway,
for two reasons:

1. it is an independent implementation cross-validating the K-relation
   evaluator (two queries agree as bags iff the list evaluator's output is
   a permutation of .. exactly the multiset the K-evaluator computes), and
2. the Figure 8 benchmark contrasts the *proof effort* of the two
   semantics; having both executables makes the comparison concrete.

Relations are Python lists; bag equality is "equal as multisets"; set
equality adds duplicate elimination — precisely the equivalence notions the
paper attributes to the list-based approach.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List

from ..core import ast
from .database import Interpretation
from .eval import EvaluationError


def eval_query_list(query: ast.Query, interp: Interpretation,
                    g: Any = ()) -> List[Any]:
    """Evaluate a query to a list of rows (bag as list, order incidental)."""
    if isinstance(query, ast.Table):
        rel = interp.relation(query.name)
        rows: List[Any] = []
        for row, annot in rel.items():
            count = annot if isinstance(annot, int) else (1 if annot else 0)
            rows.extend([row] * count)
        return rows

    if isinstance(query, ast.Select):
        inner = eval_query_list(query.query, interp, g)
        return [_project(query.projection, interp, (g, row)) for row in inner]

    if isinstance(query, ast.Product):
        left = eval_query_list(query.left, interp, g)
        right = eval_query_list(query.right, interp, g)
        return [(lt, rt) for lt in left for rt in right]

    if isinstance(query, ast.Where):
        inner = eval_query_list(query.query, interp, g)
        return [row for row in inner
                if _predicate(query.predicate, interp, (g, row))]

    if isinstance(query, ast.UnionAll):
        return eval_query_list(query.left, interp, g) + \
            eval_query_list(query.right, interp, g)

    if isinstance(query, ast.Except):
        left = eval_query_list(query.left, interp, g)
        right = set(eval_query_list(query.right, interp, g))
        return [row for row in left if row not in right]

    if isinstance(query, ast.Distinct):
        inner = eval_query_list(query.query, interp, g)
        seen = set()
        out = []
        for row in inner:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out

    raise EvaluationError(f"cannot evaluate query node: {query!r}")


def _project(proj: ast.Projection, interp: Interpretation, value: Any) -> Any:
    from .eval import eval_projection
    return eval_projection(proj, interp, value)


def _predicate(pred: ast.Predicate, interp: Interpretation, g: Any) -> bool:
    # Predicates over list semantics delegate to the standard evaluator,
    # except EXISTS, which must recurse through the list evaluator.
    if isinstance(pred, ast.Exists):
        return bool(eval_query_list(pred.query, interp, g))
    if isinstance(pred, ast.PredAnd):
        return _predicate(pred.left, interp, g) and \
            _predicate(pred.right, interp, g)
    if isinstance(pred, ast.PredOr):
        return _predicate(pred.left, interp, g) or \
            _predicate(pred.right, interp, g)
    if isinstance(pred, ast.PredNot):
        return not _predicate(pred.operand, interp, g)
    if isinstance(pred, ast.CastPred):
        recast = _project(pred.projection, interp, g)
        return _predicate(pred.predicate, interp, recast)
    from .eval import eval_predicate
    return eval_predicate(pred, interp, g)


def bags_equal(rows1: List[Any], rows2: List[Any]) -> bool:
    """Equality up to permutation — the list-semantics bag equivalence."""
    return Counter(rows1) == Counter(rows2)


def sets_equal(rows1: List[Any], rows2: List[Any]) -> bool:
    """Equality up to permutation and duplicates — set equivalence."""
    return set(rows1) == set(rows2)
