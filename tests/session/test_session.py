"""The Session/QueryHandle front door: memoization, lifecycle, batches."""

import pytest

import repro.solver.pipeline as pipeline_mod
from repro import Catalog, INT, Session, SessionError, Status, TableSpecError
from repro.session import parse_table_spec
from repro.solver.verdict import Verdict


@pytest.fixture
def session():
    with Session.from_tables("R(a:int,b:int)", "S(c:int,d:int)") as s:
        yield s


class TestCompile:
    def test_sql_returns_memoized_handle(self, session):
        h1 = session.sql("SELECT a FROM R")
        h2 = session.sql("SELECT a FROM R")
        assert h1 is h2

    def test_whitespace_insensitive_memoization(self, session):
        h1 = session.sql("SELECT a FROM R")
        h2 = session.sql("SELECT  a\n FROM   R")
        assert h1 is h2

    def test_string_literals_not_conflated(self):
        with Session.from_tables("T(s:string)") as s:
            h1 = s.sql("SELECT s FROM T WHERE s = 'x y'")
            h2 = s.sql("SELECT s FROM T WHERE s = 'x  y'")
            assert h1 is not h2
            assert h1.query != h2.query

    def test_handles_in_creation_order(self, session):
        a = session.sql("SELECT a FROM R")
        b = session.sql("SELECT b FROM R")
        assert session.handles == [a, b]

    def test_handle_equality_is_structural(self, session):
        h1 = session.sql("SELECT a FROM R")
        h2 = session.sql("SELECT R.a FROM R")
        assert h1 is not h2 and h1 == h2
        assert len({h1, h2}) == 1

    def test_columns_and_schema_exposed(self, session):
        h = session.sql("SELECT a, b FROM R")
        assert [c for c, _ in h.columns] == ["a", "b"]

    def test_compile_errors_propagate(self, session):
        from repro import ReproError
        with pytest.raises(ReproError):
            session.sql("SELECT nope FROM R")


class TestChecking:
    def test_equivalent_to_proves_self_join(self, session):
        q1 = session.sql("SELECT DISTINCT a FROM R")
        q2 = session.sql("SELECT DISTINCT x.a FROM R AS x, R AS y "
                         "WHERE x.a = y.a")
        verdict = q1.equivalent_to(q2)
        assert verdict.proved

    def test_accepts_sql_text_directly(self, session):
        verdict = session.sql("SELECT a FROM R").equivalent_to(
            "SELECT R.a FROM R")
        assert verdict.proved

    def test_check_convenience(self, session):
        assert session.check("SELECT a FROM R", "SELECT a FROM R").proved

    def test_disprove_finds_counterexample(self, session):
        result = session.sql("SELECT a FROM R").disprove("SELECT b FROM R")
        assert result.found

    def test_foreign_handle_rejected(self, session):
        other = Session.from_tables("R(a:int,b:int)")
        foreign = other.sql("SELECT a FROM R")
        with pytest.raises(SessionError):
            session.sql("SELECT a FROM R").equivalent_to(foreign)
        other.close()

    def test_schema_mismatch_raises_value_error(self, session):
        with pytest.raises(ValueError):
            session.check("SELECT a FROM R", "SELECT a, b FROM R")

    def test_schema_mismatch_is_also_repro_error(self, session):
        from repro import ReproError
        from repro.errors import SchemaMismatchError
        with pytest.raises(ReproError) as excinfo:
            session.check("SELECT a FROM R", "SELECT a, b FROM R")
        assert isinstance(excinfo.value, SchemaMismatchError)


class TestMemoizedNormalForms:
    def test_normalize_once_per_query_across_checks(self, session,
                                                    monkeypatch):
        calls = []
        real = pipeline_mod.normalize
        monkeypatch.setattr(pipeline_mod, "normalize",
                            lambda u: calls.append(1) or real(u))
        queries = [session.sql(f"SELECT a FROM R WHERE a = {i}")
                   for i in range(4)]
        for i in range(4):
            for j in range(4):
                queries[i].equivalent_to(queries[j])
        # 16 pair checks, but each of the 4 queries normalized exactly once.
        assert len(calls) == 4

    def test_normalized_is_cached_on_handle(self, session):
        h = session.sql("SELECT a FROM R")
        assert h.normalized is h.normalized

    def test_pipeline_check_agrees_with_session(self, session):
        # The pre-normalized fast path must answer exactly like the
        # one-shot Pipeline.check on a fresh pipeline.
        from repro.solver.pipeline import Pipeline
        q1 = session.sql("SELECT DISTINCT a FROM R")
        q2 = session.sql("SELECT DISTINCT x.a FROM R AS x, R AS y "
                         "WHERE x.a = y.a")
        fresh = Pipeline().check(q1.query, q2.query)
        via_session = q1.equivalent_to(q2)
        assert fresh.status is via_session.status
        assert fresh.fingerprint == via_session.fingerprint


class TestAllPairs:
    def test_check_all_pairs_counts(self, session):
        texts = ["SELECT a FROM R", "SELECT R.a FROM R", "SELECT b FROM R"]
        report = session.check_all_pairs(texts)
        assert len(report) == 3
        assert report.count(Status.PROVED) == 1
        assert report.count(Status.DISPROVED) == 2
        assert report.normalizations == 3
        assert "3 pair(s)" in report.summary()

    def test_check_all_pairs_defaults_to_session_handles(self, session):
        session.sql("SELECT a FROM R")
        session.sql("SELECT b FROM R")
        report = session.check_all_pairs()
        assert len(report) == 1

    def test_mixed_schemas_do_not_abort_the_batch(self, session):
        report = session.check_all_pairs(
            ["SELECT a FROM R", "SELECT R.a FROM R", "SELECT a, b FROM R"])
        assert len(report) == 3
        assert report.count(Status.PROVED) == 1
        mismatched = [r for r in report if r.verdict.stage == "schema"]
        assert len(mismatched) == 2
        assert all(r.verdict.disproved for r in mismatched)
        assert "output schemas differ" in mismatched[0].verdict.detail

    def test_check_pairs_returns_oriented_verdicts(self, session):
        report = session.check_pairs(
            [("SELECT a FROM R", "SELECT b FROM R"),
             ("SELECT b FROM R", "SELECT a FROM R")])
        assert all(isinstance(r.verdict, Verdict) for r in report)
        assert report.unique_questions == 1
        assert report.cache_hits >= 1

    def test_pairwise_normalizations_not_recounted(self, session):
        session.check_all_pairs(["SELECT a FROM R", "SELECT b FROM R"])
        report = session.check_all_pairs(
            ["SELECT a FROM R", "SELECT b FROM R"])
        assert report.normalizations == 0  # both memoized from first call


class TestOptimize:
    def test_plan_handle_roundtrip(self, session):
        q = session.sql("SELECT DISTINCT x.a FROM R AS x, R AS y "
                        "WHERE x.a = y.a")
        plan = q.optimize()
        assert plan.certified is True
        assert plan.explain()
        # The decompiled SQL recompiles to something provably equivalent.
        assert plan.handle().equivalent_to(q).proved
        assert session.sql(plan.sql()).equivalent_to(q).proved

    def test_optimize_feeds_session_cache(self, session):
        q = session.sql("SELECT DISTINCT x.a FROM R AS x, R AS y "
                        "WHERE x.a = y.a")
        before = len(session.cache)
        q.optimize()
        assert len(session.cache) > before


class TestLifecycle:
    def test_context_manager_persists_cache(self, tmp_path):
        path = str(tmp_path / "proofs.json")
        with Session.from_tables("R(a:int,b:int)", cache=path) as s:
            s.check("SELECT a FROM R", "SELECT R.a FROM R")
            fingerprints = {v.fingerprint for v in s.cache._entries.values()}
        with Session.from_tables("R(a:int,b:int)", cache=path) as s2:
            assert set(s2.cache._entries) == fingerprints
            verdict = s2.check("SELECT a FROM R", "SELECT R.a FROM R")
            assert verdict.cached

    def test_cache_kwarg_accepts_path_string(self, tmp_path):
        # Session(cache=path) must behave like from_tables(..., cache=path).
        path = str(tmp_path / "pc.json")
        with Session(cache=path) as s:
            s.add_table("R(a:int,b:int)")
            s.check("SELECT a FROM R", "SELECT R.a FROM R")
        import os
        assert os.path.exists(path)

    def test_cache_kwarg_rejects_other_types(self):
        with pytest.raises(SessionError):
            Session(cache=42)
        with pytest.raises(SessionError):
            Session(cache="a.json", cache_path="b.json")

    def test_normalize_seconds_charged_once(self, session):
        h1 = session.sql("SELECT a FROM R")
        h2 = session.sql("SELECT R.a  FROM R WHERE 1 = 1")
        first = h1.equivalent_to(h2)
        again = h1.equivalent_to(h2)  # cache hit, both sides memoized
        assert first.timings["normalize"] > 0.0
        assert again.timings["normalize"] == 0.0

    def test_closed_session_rejects_work(self):
        s = Session.from_tables("R(a:int,b:int)")
        s.close()
        with pytest.raises(SessionError):
            s.sql("SELECT a FROM R")
        s.close()  # idempotent

    def test_catalog_injection(self):
        catalog = Catalog()
        catalog.add_table("T", [("x", INT)])
        with Session(catalog) as s:
            assert s.check("SELECT x FROM T", "SELECT T.x FROM T").proved


class TestTableSpecs:
    def test_parse_table_spec(self):
        name, columns = parse_table_spec("R(a:int, b:bool)")
        assert name == "R" and [c for c, _ in columns] == ["a", "b"]

    @pytest.mark.parametrize("spec", [
        "R", "R()", "R(a)", "R(a:what)", "R(a:int,a:int)"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(TableSpecError):
            parse_table_spec(spec)

    def test_add_table_chainable(self):
        with Session() as s:
            s.add_table("A(x:int)").add_table("B", [("y", INT)])
            assert set(s.catalog.tables) == {"A", "B"}


class TestBatchService:
    def test_check_batch_through_session(self, session):
        from repro.solver.service import Job
        q1 = session.sql("SELECT a FROM R").query
        q2 = session.sql("SELECT R.a FROM R").query
        report = session.check_batch(
            [Job(job_id="j0", q1=q1, q2=q2)], workers=1)
        assert report.verdicts["j0"].proved

    def test_service_is_lazy_and_closed_with_session(self):
        s = Session.from_tables("R(a:int,b:int)")
        assert s._service is None
        service = s.service
        assert s._service is service
        s.close()
        assert s._service is None
