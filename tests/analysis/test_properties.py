"""The property lattice: satisfiability, intervals, plan properties."""

import pytest

from repro.analysis.properties import (
    Interval,
    PlanProperties,
    Sat,
    TOP,
    UNBOUNDED,
)


class TestSat:
    def test_negate(self):
        assert Sat.ALWAYS.negate() is Sat.NEVER
        assert Sat.NEVER.negate() is Sat.ALWAYS
        assert Sat.UNKNOWN.negate() is Sat.UNKNOWN

    def test_and(self):
        assert Sat.ALWAYS.and_(Sat.ALWAYS) is Sat.ALWAYS
        assert Sat.ALWAYS.and_(Sat.UNKNOWN) is Sat.UNKNOWN
        assert Sat.NEVER.and_(Sat.UNKNOWN) is Sat.NEVER
        assert Sat.UNKNOWN.and_(Sat.NEVER) is Sat.NEVER

    def test_or(self):
        assert Sat.NEVER.or_(Sat.NEVER) is Sat.NEVER
        assert Sat.ALWAYS.or_(Sat.UNKNOWN) is Sat.ALWAYS
        assert Sat.UNKNOWN.or_(Sat.UNKNOWN) is Sat.UNKNOWN


class TestInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            Interval(-1, 2)
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_zero_and_containment(self):
        assert Interval(0, 0).is_zero
        assert not Interval(0, 1).is_zero
        assert Interval(1, 3).contains(2)
        assert not Interval(1, 3).contains(0)
        assert UNBOUNDED.contains(10 ** 9)

    def test_arithmetic(self):
        assert Interval(1, 2).plus(Interval(3, 4)) == Interval(4, 6)
        assert Interval(1, 2).times(Interval(3, 4)) == Interval(3, 8)
        assert Interval(1, 2).plus(UNBOUNDED) == Interval(1, None)
        assert Interval(0, 3).times(Interval(0, None)) == Interval(0, None)
        # zero annihilates even the unbounded factor
        assert Interval(0, 0).times(UNBOUNDED) == Interval(0, 0)

    def test_clamp_and_truncate(self):
        assert Interval(2, 5).clamp_lo() == Interval(0, 5)
        # DISTINCT: at least one row survives a nonempty bag; the row
        # count stays bounded by the total multiplicity
        assert Interval(2, 5).truncate() == Interval(1, 5)
        assert Interval(0, 5).truncate() == Interval(0, 5)
        assert Interval(0, 0).truncate() == Interval(0, 0)

    def test_meet(self):
        assert Interval(0, 5).meet(Interval(2, None)) == Interval(2, 5)
        # disjoint bounds are contradictory: meet signals it with None
        assert Interval(0, 1).meet(Interval(3, 4)) is None


class TestPlanProperties:
    def test_empty_implies_set_and_zero_card(self):
        p = PlanProperties(empty=True)
        assert p.set_valued
        assert p.card == Interval(0, 0)

    def test_zero_card_implies_empty(self):
        p = PlanProperties(card=Interval(0, 0))
        assert p.empty

    def test_keys_imply_set(self):
        p = PlanProperties(keys=frozenset({("L",)}))
        assert p.set_valued

    def test_refine_accumulates(self):
        a = PlanProperties(set_valued=True, card=Interval(0, 10))
        b = PlanProperties(keys=frozenset({("L",)}), card=Interval(2, None))
        c = a.refine(b)
        assert c.set_valued
        assert ("L",) in c.keys
        assert c.card == Interval(2, 10)

    def test_top_is_neutral(self):
        p = PlanProperties(set_valued=True, card=Interval(1, 4))
        assert TOP.refine(p) == p
        assert p.refine(TOP) == p
