"""The e-graph core: union-find, hashcons, congruence, provenance."""


from repro.core import ast
from repro.core.schema import INT, SVar
from repro.optimizer.egraph import EGraph, Reason, query_children


def _table(name):
    return ast.Table(name, SVar("s"))


def _pred(value):
    return ast.PredEq(ast.P2E(ast.RIGHT, INT), ast.Const(value, INT))


class TestAddTerm:
    def test_roundtrip(self):
        eg = EGraph()
        q = ast.Where(ast.Product(_table("R"), _table("S")), _pred(1))
        root = eg.add_term(q)
        eg.rebuild()
        # Interned ASTs make rebuilding the term exact (same object).
        assert eg.any_term(root) is q

    def test_shared_subtrees_share_classes(self):
        eg = EGraph()
        q = ast.UnionAll(ast.Distinct(_table("R")), ast.Distinct(_table("R")))
        root = eg.add_term(q)
        (node,) = eg.nodes_of(root)
        left, right = node.children
        assert eg.find(left) == eg.find(right)

    def test_term_memo_hits_on_interned_identity(self):
        eg = EGraph()
        q1 = ast.Distinct(_table("R"))
        q2 = ast.Distinct(_table("R"))  # same canonical node (interned)
        assert q1 is q2
        c1 = eg.add_term(q1)
        nodes_before = eg.nodes_added
        c2 = eg.add_term(q2)
        assert eg.find(c1) == eg.find(c2)
        assert eg.nodes_added == nodes_before

    def test_hashcons_deduplicates(self):
        eg = EGraph()
        r = eg.add_term(_table("R"))
        c1 = eg.add(ast.Distinct, (), (r,))
        c2 = eg.add(ast.Distinct, (), (r,))
        assert eg.find(c1) == eg.find(c2)
        assert eg.num_nodes == 2  # Table + Distinct


class TestUnionAndCongruence:
    def test_union_merges_classes(self):
        eg = EGraph()
        a = eg.add_term(_table("R"))
        b = eg.add_term(_table("S"))
        assert eg.find(a) != eg.find(b)
        eg.union(a, b)
        assert eg.find(a) == eg.find(b)

    def test_congruence_merges_parents(self):
        eg = EGraph()
        r, s = eg.add_term(_table("R")), eg.add_term(_table("S"))
        dr = eg.add(ast.Distinct, (), (r,))
        ds = eg.add(ast.Distinct, (), (s,))
        assert eg.find(dr) != eg.find(ds)
        eg.union(r, s)
        merged = eg.rebuild()
        # R ≡ S forces Distinct(R) ≡ Distinct(S) by congruence.
        assert merged >= 1
        assert eg.find(dr) == eg.find(ds)

    def test_congruence_cascades_upward(self):
        eg = EGraph()
        r, s = eg.add_term(_table("R")), eg.add_term(_table("S"))
        dr = eg.add(ast.Distinct, (), (r,))
        ds = eg.add(ast.Distinct, (), (s,))
        wdr = eg.add(ast.Where, (_pred(1),), (dr,))
        wds = eg.add(ast.Where, (_pred(1),), (ds,))
        eg.union(r, s)
        eg.rebuild()
        assert eg.find(wdr) == eg.find(wds)

    def test_rebuild_compacts_duplicate_nodes(self):
        eg = EGraph()
        r, s = eg.add_term(_table("R")), eg.add_term(_table("S"))
        eg.add(ast.Distinct, (), (r,))
        eg.add(ast.Distinct, (), (s,))
        eg.union(r, s)
        eg.rebuild()
        distinct_classes = [nodes for _, nodes in eg.classes()
                            if any(n.op is ast.Distinct for n in nodes)]
        assert len(distinct_classes) == 1
        # The two Distinct parents collapsed into ONE canonical e-node.
        assert len(distinct_classes[0]) == 1

    def test_counters(self):
        eg = EGraph()
        q = ast.Where(_table("R"), _pred(1))
        eg.add_term(q)
        eg.rebuild()
        assert eg.num_nodes == 2
        assert eg.num_classes == 2


class TestProvenance:
    def test_rule_created_node_remembers_reason(self):
        eg = EGraph()
        r = eg.add_term(_table("R"))
        src = eg.nodes_of(r)[0]
        cid = eg.add(ast.Distinct, (), (r,), reason=Reason("some_rule", src))
        (node,) = [n for n in eg.nodes_of(cid) if n.op is ast.Distinct]
        assert eg.reasons[node].rule == "some_rule"

    def test_primordial_nodes_reject_late_attribution(self):
        eg = EGraph()
        q = ast.Distinct(_table("R"))
        eg.add_term(q)
        r = eg.add_term(_table("R"))
        src = eg.nodes_of(r)[0]
        cid = eg.add(ast.Distinct, (), (r,), reason=Reason("late", src))
        (node,) = eg.nodes_of(cid)
        assert node not in eg.reasons  # inserted verbatim, not derived

    def test_anonymous_piece_adopts_first_rule(self):
        eg = EGraph()
        r = eg.add_term(_table("R"))
        src = eg.nodes_of(r)[0]
        first = eg.add(ast.Distinct, (), (r,))          # anonymous piece
        again = eg.add(ast.Distinct, (), (r,),
                       reason=Reason("adopter", src))   # same node, named
        assert eg.find(first) == eg.find(again)
        (node,) = [n for n in eg.nodes_of(first) if n.op is ast.Distinct]
        assert eg.reasons[node].rule == "adopter"


class TestHelpers:
    def test_query_children(self):
        q = ast.Product(_table("R"), _table("S"))
        assert query_children(q) == (q.left, q.right)
        assert query_children(_table("R")) == ()

    def test_enode_shallow_rebuild(self):
        eg = EGraph()
        q = ast.Where(_table("R"), _pred(2))
        root = eg.add_term(q)
        (node,) = eg.nodes_of(root)
        rebuilt = eg.enode_term_shallow(node, (_table("R"),))
        assert rebuilt is q

    def test_any_term_on_cyclic_class_picks_finite_member(self):
        eg = EGraph()
        r = eg.add_term(_table("R"))
        w = eg.add(ast.Where, (_pred(1),), (r,))
        # Make the filtered class cyclic: σ_b(C) ∈ C.
        self_loop = eg.add(ast.Where, (_pred(1),), (w,))
        eg.union(w, self_loop)
        eg.rebuild()
        term = eg.any_term(w)
        assert isinstance(term, ast.Where)
