"""Solver pipeline — cache hit-rate and batch throughput vs one-shot.

The seed's only entry point was a one-shot, cache-less
``check_query_equivalence`` call.  This benchmark measures what the
verification-service layer buys on the full rule corpus (23 sound + 5
unsound rules):

* **sequential one-shot** — the seed's path: denote + normalize + prove,
  every call from scratch,
* **batch, cold cache** — the tiered pipeline through the batch service
  (dedup + pipeline stages; buggy rules additionally get a
  bounded-exhaustive counterexample, which one-shot cannot produce),
* **batch, warm cache** — the same batch again: every answer is a
  content-addressed cache hit.

The acceptance bar (ISSUE 1) is warm-batch ≥ 2× faster than sequential
one-shot; the cache typically clears it by two orders of magnitude.
"""

import time

from repro.core.equivalence import check_query_equivalence
from repro.core.schema import INT
from repro.rules import all_buggy_rules, all_rules
from repro.solver import Job, Status, VerificationService
from repro.sql import Catalog, compile_sql


def _corpus():
    return list(all_rules()) + list(all_buggy_rules())


def _sequential_one_shot(rules):
    """The seed's path: a bare prover call per rule, no cache, no tiers."""
    outcomes = {}
    for rule in rules:
        result = check_query_equivalence(rule.lhs, rule.rhs,
                                         rule.ctx_schema, rule.hypotheses)
        outcomes[rule.name] = result.equal
    return outcomes


def test_solver_pipeline_report(report):
    rules = _corpus()

    started = time.perf_counter()
    one_shot = _sequential_one_shot(rules)
    sequential_s = time.perf_counter() - started

    service = VerificationService()
    started = time.perf_counter()
    cold = service.check_rules(rules, workers=1)
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = service.check_rules(rules, workers=1)
    warm_s = time.perf_counter() - started

    # A duplicate-heavy SQL batch: the shape a rewriting optimizer
    # produces (the same few questions over and over).
    catalog = Catalog()
    catalog.add_table("R", [("a", INT), ("b", INT)])
    pairs = [
        ("SELECT a FROM R", "SELECT a FROM R"),
        ("SELECT DISTINCT a FROM R",
         "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a"),
        ("SELECT a FROM R", "SELECT b FROM R"),
    ]
    jobs = [Job(f"j{i}",
                compile_sql(pairs[i % 3][0], catalog).query,
                compile_sql(pairs[i % 3][1], catalog).query)
            for i in range(60)]
    started = time.perf_counter()
    batch = service.check_batch(jobs, workers=1)
    batch_s = time.perf_counter() - started

    report.add("Solver pipeline — batch throughput vs one-shot")
    report.add("=" * 72)
    report.add(f"{'configuration':<38}{'wall':>10}{'per check':>12}"
               f"{'speedup':>10}")
    report.add("-" * 72)
    n = len(rules)

    def row(label, seconds):
        speedup = sequential_s / seconds if seconds > 0 else float("inf")
        report.add(f"{label:<38}{seconds * 1e3:>8.1f}ms"
                   f"{seconds / n * 1e3:>10.2f}ms{speedup:>9.1f}x")

    row("sequential one-shot (seed path)", sequential_s)
    row("batch service, cold cache", cold_s)
    row("batch service, warm cache", warm_s)
    report.add("")
    report.add(f"rule corpus: {n} rules — "
               f"{warm.count(Status.PROVED)} proved, "
               f"{warm.count(Status.DISPROVED)} disproved "
               f"(each with a concrete counterexample)")
    report.add(f"cold batch:  {cold.computed} computed, "
               f"{cold.cache_hits} cache hits")
    report.add(f"warm batch:  {warm.computed} computed, "
               f"{warm.cache_hits} cache hits "
               f"(hit rate {service.cache.hit_rate:.0%} cumulative)")
    report.add("")
    report.add(f"duplicate-heavy SQL batch: {batch.total_jobs} jobs → "
               f"{batch.unique_questions} unique questions "
               f"({batch.duplicate_jobs} deduplicated) "
               f"in {batch_s * 1e3:.1f}ms")
    report.emit("bench_solver_pipeline")

    # -- the ISSUE's acceptance criteria, enforced -------------------------
    assert all(one_shot[rule.name] == rule.sound for rule in rules
               if rule.name in one_shot)
    assert warm.count(Status.PROVED) == 23
    assert warm.count(Status.DISPROVED) == 5
    assert warm.cache_hits == len(rules)
    # warm batch ≥ 2× faster than the seed's sequential one-shot path.
    assert warm_s * 2 <= sequential_s, \
        f"warm batch {warm_s:.4f}s not 2x faster than {sequential_s:.4f}s"
    # dedup must collapse the duplicate-heavy batch.
    assert batch.unique_questions == 3
