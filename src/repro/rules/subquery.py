"""Subquery rewrite rules (Figure 8 row "Subquery": 2 rules).

Subquery elimination is a staple of production optimizers (the paper cites
optimizer bugs in exactly this machinery [17, 43]).  The two rules here are
the generic forms: flattening a nested SELECT, and eliminating a correlated
EXISTS that is implied by the outer row.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..core import ast
from ..core.schema import EMPTY, INT, Leaf, Node, SVar
from ..engine.random_instances import deterministic_expression
from .common import SR, standard_interpretation, table
from .rule import RewriteRule

_SA = SVar("sA")
_R = table("R", SR)


def _select_compose() -> RewriteRule:
    # p1 projects a tuple of R (with its context) to schema sA; p2 continues
    # from sA (with context) to sB.  Flattening composes them.
    sb = SVar("sB")
    p1 = ast.PVar("p1", Node(EMPTY, SR), _SA)
    p2 = ast.PVar("p2", Node(EMPTY, _SA), sb)
    lhs = ast.Select(p2, ast.Select(p1, _R))
    rhs = ast.Select(ast.Compose(ast.Duplicate(ast.LEFT, p1), p2), _R)
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R",))
        # p1: a function of the current R-tuple; p2: a function of p1's
        # output.  Both deterministic so each side computes the same bag.
        inner = deterministic_expression(rng.randrange(1 << 30), (0, 1, 2))
        outer = deterministic_expression(rng.randrange(1 << 30), (0, 1, 2, 3))
        interp.projections["p1"] = lambda v: inner(v[1])
        interp.projections["p2"] = lambda v: outer(v[1])
        return lhs, rhs, interp
    return RewriteRule(
        name="subquery_flatten", category="subquery",
        description="Nested SELECTs compose: SELECT p2 (SELECT p1 R) is one "
                    "SELECT of the composed projection (point elimination of "
                    "the intermediate tuple).",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "sum_hoist", "point_eliminate"),
        paper_ref="Sec. 3.2",
        instantiate=factory)


def _exists_self_elim() -> RewriteRule:
    # R WHERE EXISTS (SELECT * FROM R WHERE p(inner) = p(outer))  ≡  R.
    # The witness is the outer row itself (Lemma 5.3).
    p = ast.PVar("p", SR, Leaf(INT))
    inner = ast.Where(
        _R,
        ast.PredEq(ast.P2E(ast.path(ast.RIGHT, p), INT),
                   ast.P2E(ast.path(ast.LEFT, ast.RIGHT, p), INT)))
    lhs = ast.Where(_R, ast.Exists(inner))
    rhs = _R
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R",), attrs=("p",))
        return lhs, rhs, interp
    return RewriteRule(
        name="exists_self_elim", category="subquery",
        description="A correlated EXISTS implied by the outer row is "
                    "eliminated (subquery elimination): R WHERE EXISTS "
                    "(σ_{p=p(t)} R) ≡ R, witnessed by t itself.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "absorb_lemma_5_3",
                       "instantiate_witness"),
        paper_ref="Sec. 5.1.3 (Lemma 5.3)",
        instantiate=factory)


def subquery_rules() -> Tuple[RewriteRule, ...]:
    """The two subquery rules of Figure 8."""
    return (_select_compose(), _exists_self_elim())
