"""Certified optimizer: rewrites, cost model, planner."""

import pytest

from repro.core import ast
from repro.core.equivalence import queries_equivalent
from repro.core.schema import INT
from repro.engine import Database, run_query
from repro.optimizer import (
    TableStats,
    estimate,
    optimize,
    proj_steps,
    rewrites,
    steps_to_proj,
)
from repro.semiring import NAT
from repro.sql import Catalog, compile_sql


@pytest.fixture
def setup():
    cat = Catalog()
    cat.add_table("Emp", [("eid", INT), ("did", INT), ("age", INT)])
    cat.add_table("Dept", [("did", INT), ("budget", INT)])
    db = Database(NAT)
    db.create_table("Emp", cat.schema_of("Emp"),
                    [[i, i % 4, 20 + i] for i in range(16)])
    db.create_table("Dept", cat.schema_of("Dept"),
                    [[0, 10], [1, 200], [2, 150], [3, 30]])
    return cat, db


class TestPathHelpers:
    def test_proj_steps_roundtrip(self):
        p = ast.path(ast.RIGHT, ast.LEFT, ast.RIGHT)
        steps = proj_steps(p)
        assert steps == ("R", "L", "R")
        assert proj_steps(steps_to_proj(steps)) == steps

    def test_opaque_projection(self):
        from repro.core.schema import Leaf, SVar
        assert proj_steps(ast.PVar("p", SVar("s"), Leaf(INT))) is None


class TestRewrites:
    def test_every_rewrite_is_sound(self, setup):
        cat, db = setup
        resolved = compile_sql(
            "SELECT e.eid FROM Emp e, Dept d "
            "WHERE e.did = d.did AND d.budget > 100 AND e.age < 30", cat)
        interp = db.interpretation()
        baseline = run_query(resolved.query, interp)
        for candidate, rule in rewrites(resolved.query):
            assert run_query(candidate, interp) == baseline, rule

    def test_rewrites_certified_by_prover(self, setup):
        cat, _ = setup
        resolved = compile_sql(
            "SELECT e.eid FROM Emp e, Dept d "
            "WHERE e.did = d.did AND d.budget > 100", cat)
        for candidate, rule in rewrites(resolved.query)[:10]:
            assert queries_equivalent(resolved.query, candidate), rule

    def test_pushdown_produced(self, setup):
        cat, _ = setup
        resolved = compile_sql(
            "SELECT e.eid FROM Emp e, Dept d "
            "WHERE e.did = d.did AND d.budget > 100", cat)
        rules_seen = set()
        frontier = [resolved.query]
        for _ in range(3):
            new = []
            for q in frontier:
                for cand, rule in rewrites(q):
                    rules_seen.add(rule)
                    new.append(cand)
            frontier = new[:50]
        assert "sel_push_right" in rules_seen

    def test_distinct_collapse(self):
        from repro.core.schema import SVar
        R = ast.Table("R", SVar("s"))
        q = ast.Distinct(ast.Distinct(R))
        assert any(rule == "distinct_idem" for _, rule in rewrites(q))


class TestCostModel:
    def test_table_cost_is_cardinality(self):
        stats = TableStats({"R": 100.0})
        from repro.core.schema import SVar
        est = estimate(ast.Table("R", SVar("s")), stats)
        assert est.cardinality == 100.0

    def test_product_cost_multiplies(self):
        from repro.core.schema import SVar
        stats = TableStats({"R": 10.0, "S": 20.0})
        q = ast.Product(ast.Table("R", SVar("a")), ast.Table("S", SVar("b")))
        est = estimate(q, stats)
        assert est.cardinality == 200.0

    def test_selection_reduces_cardinality(self):
        from repro.core.schema import Leaf, Node, SVar
        stats = TableStats({"R": 100.0})
        R = ast.Table("R", SVar("s"))
        # A statically-unknown equality gets the generic selectivity.
        a = ast.ExprVar("a", Node(SVar("g"), Leaf(INT)), INT)
        filtered = ast.Where(R, ast.PredEq(a, ast.Const(1, INT)))
        assert estimate(filtered, stats).cardinality < 100.0

    def test_tautology_does_not_reduce_cardinality(self):
        # The static-analysis fast path: WHERE 1 = 1 keeps every row, so
        # the estimate must not pretend the filter is selective.
        from repro.core.schema import SVar
        stats = TableStats({"R": 100.0})
        R = ast.Table("R", SVar("s"))
        taut = ast.Where(R, ast.PredEq(ast.Const(1, INT),
                                       ast.Const(1, INT)))
        assert estimate(taut, stats).cardinality == 100.0
        contra = ast.Where(R, ast.PredEq(ast.Const(1, INT),
                                         ast.Const(2, INT)))
        assert estimate(contra, stats).cardinality == 0.0

    def test_stats_from_database(self, setup):
        _, db = setup
        stats = TableStats.from_database(db)
        assert stats.cardinality("Emp") == 16.0
        assert stats.cardinality("unknown") == 100.0


class TestPlanner:
    def test_optimizer_improves_and_certifies(self, setup):
        cat, db = setup
        resolved = compile_sql(
            "SELECT e.eid FROM Emp e, Dept d "
            "WHERE e.did = d.did AND d.budget > 100 AND e.age < 30", cat)
        stats = TableStats.from_database(db)
        result = optimize(resolved.query, stats, max_plans=400)
        assert result.improved
        assert result.certified is True
        assert result.applied_rules

    def test_optimized_plan_computes_same_results(self, setup):
        cat, db = setup
        queries = [
            "SELECT e.eid FROM Emp e, Dept d "
            "WHERE e.did = d.did AND d.budget > 100",
            "SELECT a.eid FROM Emp a, Emp b "
            "WHERE a.did = b.did AND b.age < 25",
            "SELECT DISTINCT e.did FROM Emp e WHERE e.age < 30 AND "
            "e.eid > 2",
        ]
        stats = TableStats.from_database(db)
        interp = db.interpretation()
        for source in queries:
            resolved = compile_sql(source, cat)
            result = optimize(resolved.query, stats, max_plans=200)
            assert run_query(result.best_plan, interp) == \
                run_query(resolved.query, interp), source
            assert result.certified is True

    def test_no_rewrite_when_nothing_applies(self, setup):
        cat, db = setup
        resolved = compile_sql("SELECT eid FROM Emp", cat)
        stats = TableStats.from_database(db)
        result = optimize(resolved.query, stats, max_plans=50)
        assert result.best_cost == result.original_cost
        assert result.certified is True

    def test_certification_can_be_skipped(self, setup):
        cat, db = setup
        resolved = compile_sql("SELECT eid FROM Emp", cat)
        stats = TableStats.from_database(db)
        result = optimize(resolved.query, stats, certify=False)
        assert result.certified is None


class TestConjunctDedup:
    """Idempotent-conjunct elimination: σ_{b∧b} rewrites to σ_b, the
    selectivity model stops double-counting the repeated conjunct, and
    the planner's equal-cost size tie-break makes optimize() pick the
    dedup'd plan."""

    def test_rewrite_emitted_and_equivalent(self, setup):
        cat, db = setup
        resolved = compile_sql(
            "SELECT eid FROM Emp WHERE eid = 1 AND eid = 1", cat)
        candidates = rewrites(resolved.query)
        dedup = [q for q, rule in candidates if rule == "sel_conj_dedup"]
        assert dedup
        assert queries_equivalent(resolved.query, dedup[0])

    def test_nested_duplicates_collapse(self, setup):
        cat, _ = setup
        resolved = compile_sql(
            "SELECT eid FROM Emp WHERE eid = 1 AND (age = 2 AND eid = 1)",
            cat)
        dedup = [q for q, rule in rewrites(resolved.query)
                 if rule == "sel_conj_dedup"]
        assert dedup and queries_equivalent(resolved.query, dedup[0])

    def test_selectivity_ignores_repeats(self):
        from repro.optimizer.cost import _selectivity
        eq = ast.PredEq(ast.P2E(ast.RIGHT, INT), ast.Const(1, INT))
        assert _selectivity(ast.PredAnd(eq, eq)) == _selectivity(eq)

    def test_optimize_drops_duplicate_conjunct(self, setup):
        cat, db = setup
        resolved = compile_sql(
            "SELECT eid FROM Emp WHERE eid = 1 AND eid = 1", cat)
        stats = TableStats.from_database(db)
        result = optimize(resolved.query, stats, max_plans=100)
        assert "sel_conj_dedup" in result.applied_rules
        assert result.certified is True
        # The chosen plan has a single conjunct left.
        from repro.sql.decompile import plan_to_sql
        sql = plan_to_sql(result.best_plan, cat)
        assert sql.count("= 1") == 1


class TestPlanCache:
    """optimize() memoizes plan search per (query, strategy, stats,
    budget) — prepared-statement style — without caching certification."""

    def test_repeat_optimize_hits_plan_cache(self):
        from repro.optimizer.planner import _PLAN_MEMO

        cat = Catalog()
        cat.add_table("Emp", [("eid", INT), ("did", INT), ("age", INT)])
        query = compile_sql(
            "SELECT eid FROM Emp WHERE eid = 1 AND eid = 1", cat).query
        stats = TableStats({"Emp": 50.0})
        first = optimize(query, stats, certify=False)
        before = _PLAN_MEMO.snapshot()["lifetime_hits"]
        second = optimize(query, stats, certify=False)
        assert _PLAN_MEMO.snapshot()["lifetime_hits"] == before + 1
        assert second.best_plan is first.best_plan
        assert second.best_cost == first.best_cost
        assert second is not first  # callers get fresh result objects

    def test_changed_stats_miss_the_cache(self):
        cat = Catalog()
        cat.add_table("Emp", [("eid", INT), ("did", INT), ("age", INT)])
        query = compile_sql("SELECT eid FROM Emp WHERE eid = 1", cat).query
        stats = TableStats({"Emp": 50.0})
        optimize(query, stats, certify=False)
        stats.cardinalities["Emp"] = 500.0  # mutated in place
        from repro.optimizer.planner import _PLAN_MEMO
        before = _PLAN_MEMO.snapshot()["lifetime_misses"]
        optimize(query, stats, certify=False)
        assert _PLAN_MEMO.snapshot()["lifetime_misses"] == before + 1

    def test_certification_not_leaked_between_callers(self):
        cat = Catalog()
        cat.add_table("Emp", [("eid", INT), ("did", INT), ("age", INT)])
        query = compile_sql(
            "SELECT eid FROM Emp WHERE eid = 2 AND eid = 2", cat).query
        stats = TableStats({"Emp": 50.0})
        uncertified = optimize(query, stats, certify=False)
        assert uncertified.certified is None
        certified = optimize(query, stats, certify=True)
        assert certified.certified is True
        again = optimize(query, stats, certify=False)
        assert again.certified is None
