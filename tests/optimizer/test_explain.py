"""EXPLAIN rendering of plans."""

import pytest

from repro.core import ast
from repro.core.schema import INT
from repro.optimizer import TableStats, explain, optimize
from repro.sql import Catalog, compile_sql


@pytest.fixture
def setup():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    cat.add_table("S", [("a", INT), ("c", INT)])
    return cat, TableStats({"R": 100.0, "S": 10.0})


class TestExplain:
    def test_scan(self, setup):
        cat, stats = setup
        text = explain(compile_sql("SELECT * FROM R", cat).query, stats)
        assert "Scan R" in text
        assert "rows≈100.0" in text

    def test_join_tree_structure(self, setup):
        cat, stats = setup
        q = compile_sql(
            "SELECT x.a FROM R x, S y WHERE x.a = y.a", cat).query
        text = explain(q, stats)
        lines = text.splitlines()
        assert lines[0].startswith("Project")
        assert any("Filter" in line for line in lines)
        assert any("CrossJoin" in line for line in lines)
        assert sum("Scan" in line for line in lines) == 2
        # Indentation grows with depth.
        assert lines[1].startswith("  ")

    def test_all_operators_render(self, setup):
        cat, stats = setup
        q = compile_sql(
            "SELECT DISTINCT a FROM R EXCEPT "
            "(SELECT a FROM R UNION ALL SELECT a FROM S)", cat).query
        text = explain(q, stats)
        for op in ("Except", "Distinct", "UnionAll", "Scan"):
            assert op in text, op

    def test_optimized_plan_cheaper_in_explain(self, setup):
        cat, stats = setup
        q = compile_sql(
            "SELECT x.a FROM R x, S y WHERE x.a = y.a AND y.c = 1",
            cat).query
        result = optimize(q, stats, max_plans=200, certify=False)
        before = explain(q, stats)
        after = explain(result.best_plan, stats)
        # The pushed filter sits below the join in the optimized plan.
        assert result.best_cost < result.original_cost
        assert before != after
