"""CQ minimization and empirical validation of the containment deciders."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.theory import (
    Atom,
    CQ,
    chain_query,
    cq_set_contained,
    cq_set_equivalent,
    star_query,
)
from repro.theory.minimize import (
    contained_via_canonical,
    evaluate_cq,
    is_minimal,
    minimize,
)


class TestMinimization:
    def test_redundant_self_join_minimizes(self):
        # The paper's Q3 shape: q(x) :- E(x,y) ∧ E(x,z) minimizes to one
        # atom.
        redundant = CQ(("x",), (Atom("E", ("x", "y")),
                                Atom("E", ("x", "z"))))
        core = minimize(redundant)
        assert len(core.body) == 1
        assert cq_set_equivalent(core, redundant)

    def test_stars_minimize_to_single_edge(self):
        core = minimize(star_query(4))
        assert len(core.body) == 1

    def test_chains_are_minimal(self):
        # With only the start in the head, chain_n minimizes only down to
        # the path that still witnesses reachability — a directed path is
        # its own core.
        q = chain_query(3)
        assert is_minimal(q)
        assert minimize(q) == q

    def test_minimization_preserves_equivalence(self):
        q = CQ(("x",), (Atom("E", ("x", "y")), Atom("E", ("y", "z")),
                        Atom("E", ("x", "w"))))
        core = minimize(q)
        assert cq_set_equivalent(q, core)
        assert is_minimal(core)

    def test_head_safety_respected(self):
        # Both head variables must survive minimization.
        q = CQ(("x", "y"), (Atom("E", ("x", "y")), Atom("E", ("x", "z"))))
        core = minimize(q)
        assert {"x", "y"} <= core.variables()
        assert cq_set_equivalent(q, core)


class TestEvaluation:
    TRIANGLE = {"E": {(0, 1), (1, 2), (2, 0)}}

    def test_edge_query(self):
        q = CQ(("a", "b"), (Atom("E", ("a", "b")),))
        assert evaluate_cq(q, self.TRIANGLE) == {(0, 1), (1, 2), (2, 0)}

    def test_path_query(self):
        q = CQ(("a", "c"), (Atom("E", ("a", "b")), Atom("E", ("b", "c"))))
        assert evaluate_cq(q, self.TRIANGLE) == {(0, 2), (1, 0), (2, 1)}

    def test_boolean_cycle_query(self):
        from repro.theory import cycle_query
        assert evaluate_cq(cycle_query(3), self.TRIANGLE) == {()}
        assert evaluate_cq(cycle_query(4), self.TRIANGLE) == set()

    def test_constants(self):
        q = CQ(("b",), (Atom("E", (0, "b")),))
        assert evaluate_cq(q, self.TRIANGLE) == {(1,)}


class TestCanonicalCriterion:
    def test_agrees_with_homomorphism_on_families(self):
        pairs = [
            (chain_query(2), chain_query(1)),
            (chain_query(1), chain_query(2)),
            (star_query(2), star_query(3)),
            (chain_query(3), chain_query(3)),
        ]
        for q1, q2 in pairs:
            assert contained_via_canonical(q1, q2) == \
                cq_set_contained(q1, q2), (str(q1), str(q2))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6))
    def test_agreement_on_random_cqs(self, seed):
        rng = random.Random(seed)

        def random_cq():
            variables = [f"v{i}" for i in range(rng.randint(1, 3))]
            atoms = tuple(
                Atom("E", (rng.choice(variables), rng.choice(variables)))
                for _ in range(rng.randint(1, 3)))
            used = sorted({a for atom in atoms for a in atom.args})
            return CQ((used[0],), atoms)

        q1, q2 = random_cq(), random_cq()
        assert contained_via_canonical(q1, q2) == cq_set_contained(q1, q2)


class TestContainmentSoundnessOnInstances:
    """If the decider claims Q1 ⊆ Q2, then Q1(D) ⊆ Q2(D) on random D."""

    @pytest.mark.parametrize("seed", range(15))
    def test_containment_respected_on_random_instances(self, seed):
        rng = random.Random(seed)

        def random_cq():
            variables = [f"v{i}" for i in range(rng.randint(1, 3))]
            atoms = tuple(
                Atom("E", (rng.choice(variables), rng.choice(variables)))
                for _ in range(rng.randint(1, 3)))
            used = sorted({a for atom in atoms for a in atom.args})
            return CQ((used[0],), atoms)

        q1, q2 = random_cq(), random_cq()
        if not cq_set_contained(q1, q2):
            return
        for _ in range(10):
            edges = {(rng.randrange(4), rng.randrange(4))
                     for _ in range(rng.randint(0, 6))}
            instance = {"E": edges}
            assert evaluate_cq(q1, instance) <= evaluate_cq(q2, instance)
