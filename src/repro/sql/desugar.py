"""Derived SQL constructs encoded in core HoTTSQL (paper Secs. 4.2, 7).

The paper keeps the core language small and *encodes* richer SQL:

* GROUP BY — as DISTINCT + correlated aggregate subqueries (Sec. 4.2;
  implemented in :func:`repro.rules.common.groupby_agg` for generic rules
  and in :func:`repro.sql.resolve.desugar_group_by` for the frontend;
  the frontend likewise desugars scalar aggregates as single-group
  aggregation and HAVING as a filter over the grouped subquery — see
  :func:`repro.sql.resolve.desugar_scalar_agg` and
  :func:`repro.sql.resolve.desugar_having`, re-exported here);
* θ-semijoin — as WHERE EXISTS (Sec. 5.1.3;
  :func:`repro.rules.common.semijoin`);
* **outer joins** — Sec. 7: a left outer join is the inner join unioned
  with the unmatched left rows padded by a constant row (the paper pads
  with NULL; lacking NULLs, the pad row is caller-chosen — any value
  outside the right table's active domain plays NULL's role).

This module provides the outer-join encodings, which are "directly
expressible in HoTTSQL" per Sec. 7 — here, executably so.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core import ast
from ..core.schema import Empty, Leaf, Node, Schema
from .resolve import desugar_group_by, desugar_having, desugar_scalar_agg


def const_tuple_projection(schema: Schema, values: Sequence[Any]
                           ) -> ast.Projection:
    """A projection producing a fixed tuple of ``schema`` (the pad row).

    ``values`` supplies one constant per leaf, left to right.
    """
    projection, rest = _build_const(schema, list(values))
    if rest:
        raise ValueError(f"too many pad values for schema {schema}")
    return projection


def _build_const(schema: Schema, values: list):
    if isinstance(schema, Empty):
        return ast.EMPTYP, values
    if isinstance(schema, Leaf):
        if not values:
            raise ValueError(f"not enough pad values for schema {schema}")
        head, rest = values[0], values[1:]
        return ast.E2P(ast.Const(head, schema.ty), schema.ty), rest
    if isinstance(schema, Node):
        left, rest = _build_const(schema.left, values)
        right, rest = _build_const(schema.right, rest)
        return ast.Duplicate(left, right), rest
    raise ValueError(f"cannot build a constant tuple of schema {schema}")


def inner_join(left: ast.Query, right: ast.Query,
               on: ast.Predicate) -> ast.Query:
    """``left ⋈_on right`` — the core product + selection.

    ``on`` must be a predicate over ``node σ_left σ_right``; the standard
    CASTPRED re-scoping is inserted.
    """
    cast = ast.RIGHT
    return ast.Where(ast.Product(left, right), ast.CastPred(cast, on))


def matched_left_rows(left: ast.Query, right: ast.Query,
                      on: ast.Predicate) -> ast.Query:
    """Left rows that join with at least one right row (with their
    original multiplicities collapsed by the EXCEPT that consumes this)."""
    return ast.Select(ast.path(ast.RIGHT, ast.LEFT),
                      inner_join(left, right, on))


def left_outer_join(left: ast.Query, right: ast.Query, on: ast.Predicate,
                    right_schema: Schema,
                    pad_values: Sequence[Any]) -> ast.Query:
    """Sec. 7's left-outer-join encoding.

    ``LOJ = (left ⋈ right)  ∪  (left EXCEPT matched) × {pad}``

    Unmatched left rows keep their full multiplicity (the paper's EXCEPT
    semantics) and are padded with the constant right-tuple built from
    ``pad_values`` — the NULL row stand-in.
    """
    join = inner_join(left, right, on)
    unmatched = ast.Except(left, matched_left_rows(left, right, on))
    pad = const_tuple_projection(right_schema, pad_values)
    # Constant projections consume nothing, so `pad` is well-typed from
    # the SELECT context directly.
    padded = ast.Select(ast.Duplicate(ast.RIGHT, pad), unmatched)
    return ast.UnionAll(join, padded)


def right_outer_join(left: ast.Query, right: ast.Query, on: ast.Predicate,
                     left_schema: Schema,
                     pad_values: Sequence[Any]) -> ast.Query:
    """Mirror encoding: unmatched *right* rows padded on the left."""
    join = inner_join(left, right, on)
    matched_right = ast.Select(ast.path(ast.RIGHT, ast.RIGHT), join)
    unmatched = ast.Except(right, matched_right)
    pad = const_tuple_projection(left_schema, pad_values)
    padded = ast.Select(ast.Duplicate(pad, ast.RIGHT), unmatched)
    return ast.UnionAll(join, padded)


__all__ = [
    "const_tuple_projection",
    "desugar_group_by",
    "desugar_having",
    "desugar_scalar_agg",
    "inner_join",
    "left_outer_join",
    "matched_left_rows",
    "right_outer_join",
]
