"""Batch verification service: dedup, cache, and fan out across workers.

The ROADMAP's north star is a system that "serves heavy traffic"; a query
optimizer or a CI pipeline does not ask one equivalence question, it asks
thousands — many of them duplicates.  :class:`VerificationService` accepts
a batch of (schema, Q1, Q2) jobs and answers them by:

1. **deduplicating** syntactically identical questions (the order of the
   pair does not matter — equivalence is symmetric),
2. consulting the **proof cache** via the syntactic alias index (a warm
   batch answers without normalizing anything),
3. fanning the remaining unique questions out across a
   ``multiprocessing`` worker pool, each worker running its own
   :class:`~repro.solver.pipeline.Pipeline`,
4. folding every worker verdict back into the shared cache (and, when
   configured, persisting it to disk for the next run).

Everything that crosses the process boundary is plain data: queries are
frozen dataclasses, verdicts are serialization-safe (live counterexamples
are stripped).  Rules are dispatched *by name* — their instantiators are
closures, which do not pickle — and re-resolved inside the worker.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core import ast
from ..core.equivalence import Hypotheses, NO_HYPOTHESES
from ..core.schema import Schema
from ..obs.logs import get_logger
from ..obs.metrics import (
    REGISTRY,
    counter,
    diff_snapshots,
    empty_snapshot,
    histogram,
    merge_snapshots,
)
from ..obs.trace import span
from .cache import query_side_digest, syntactic_alias
from .pipeline import Pipeline, PipelineConfig
from .verdict import Status, Verdict

_log = get_logger("solver.service")

_JOBS_TOTAL = counter("service.jobs_total")
_BATCH_CACHE_HITS = counter("service.alias_cache_hits_total")
_BATCH_WALL = histogram("service.batch.wall_seconds")


@dataclass(frozen=True)
class Job:
    """One equivalence question in a batch."""

    job_id: str
    q1: ast.Query
    q2: ast.Query
    ctx_schema: Optional[Schema] = None
    hyps: Hypotheses = NO_HYPOTHESES

    def alias(self) -> str:
        return syntactic_alias(self.q1, self.q2, self.ctx_schema, self.hyps)


@dataclass
class BatchReport:
    """Per-job verdicts plus the batch-level accounting."""

    verdicts: Dict[str, Verdict]
    total_jobs: int
    unique_questions: int
    cache_hits: int
    computed: int
    workers: int
    wall_seconds: float
    #: merged metrics delta of every computed question (worker snapshots
    #: folded with ``merge_snapshots``; identity when nothing computed).
    metrics: Dict[str, Any] = field(default_factory=empty_snapshot)
    #: alias → that question's own metrics delta.  Merging these (in any
    #: order) reproduces :attr:`metrics` — the cross-process aggregation
    #: invariant the test suite checks.
    job_metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def duplicate_jobs(self) -> int:
        return self.total_jobs - self.unique_questions

    def count(self, status: Status) -> int:
        return sum(1 for v in self.verdicts.values() if v.status is status)

    def summary(self) -> str:
        return (f"{self.total_jobs} job(s): "
                f"{self.count(Status.PROVED)} proved, "
                f"{self.count(Status.DISPROVED)} disproved, "
                f"{self.count(Status.UNKNOWN)} unknown "
                f"[{self.unique_questions} unique, "
                f"{self.cache_hits} cache hit(s), "
                f"{self.computed} computed, "
                f"{self.workers} worker(s), "
                f"{self.wall_seconds * 1e3:.1f} ms]")


# ---------------------------------------------------------------------------
# Worker-side plumbing (module-level so it pickles under fork *and* spawn)
# ---------------------------------------------------------------------------

_WORKER_PIPELINE: Optional[Pipeline] = None


def _init_worker(config: PipelineConfig) -> None:
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = Pipeline(config)


def _run_pair(payload) -> Tuple[str, Verdict, Dict[str, Any]]:
    alias, q1, q2, ctx_schema, hyps = payload
    before = REGISTRY.snapshot()
    verdict = _WORKER_PIPELINE.check(q1, q2, ctx_schema, hyps)
    delta = diff_snapshots(before, REGISTRY.snapshot())
    return alias, verdict.strip_live(), delta


def _run_rule(payload) -> Tuple[str, Verdict, Dict[str, Any]]:
    alias, rule_name = payload
    from ..rules.registry import get_rule  # deferred: rules import solver
    rule = get_rule(rule_name)
    before = REGISTRY.snapshot()
    verdict = _WORKER_PIPELINE.check_rule(rule)
    delta = diff_snapshots(before, REGISTRY.snapshot())
    return alias, verdict.strip_live(), delta


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------

class VerificationService:
    """A batch front end over a shared :class:`Pipeline`.

    The worker pool is created lazily on the first parallel batch and
    *kept* across batches (workers amortize interpreter start-up and warm
    their own pipeline caches); :meth:`close` — or using the service as a
    context manager — tears it down.  :class:`repro.session.Session` owns
    one of these and closes it on exit.
    """

    def __init__(self, pipeline: Optional[Pipeline] = None,
                 config: Optional[PipelineConfig] = None,
                 cache_path: Optional[str] = None,
                 workers: Optional[int] = None) -> None:
        self.pipeline = pipeline if pipeline is not None \
            else Pipeline(config, cache_path=cache_path)
        self.default_workers = workers
        self._pool = None
        self._pool_size = 0

    @property
    def cache(self):
        return self.pipeline.cache

    def save_cache(self, path: Optional[str] = None) -> str:
        return self.cache.save(path)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Tear down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_size = 0

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- batches of query pairs --------------------------------------------

    def check_batch(self, jobs: Sequence[Job],
                    workers: Optional[int] = None) -> BatchReport:
        """Answer every job, deduplicating and parallelizing."""
        with span("service.check_batch", jobs=len(jobs)) as sp:
            groups: Dict[str, List[Job]] = {}
            order: List[str] = []
            for job in jobs:
                alias = job.alias()
                if alias not in groups:
                    groups[alias] = []
                    order.append(alias)
                groups[alias].append(job)

            answers: Dict[str, Verdict] = {}
            pending: List[Job] = []
            cache_hits = 0
            for alias in order:
                hit = self.cache.get_by_alias(alias)
                if hit is not None:
                    answers[alias] = hit
                    cache_hits += 1
                else:
                    pending.append(groups[alias][0])

            worker_count = self._resolve_workers(workers, len(pending))
            job_metrics: Dict[str, Dict[str, Any]] = {}
            if pending:
                if worker_count > 1:
                    payloads = [(job.alias(), job.q1, job.q2,
                                 job.ctx_schema, job.hyps)
                                for job in pending]
                    for (alias, verdict, delta), remote in self._map(
                            _run_pair, payloads, worker_count):
                        answers[alias] = verdict
                        self._store(alias, verdict)
                        job_metrics[alias] = delta
                        if remote:
                            # Inline fallback jobs already wrote to this
                            # process's registry; only genuinely remote
                            # deltas are folded in, lest they double-count.
                            REGISTRY.absorb(delta)
                else:
                    for job in pending:
                        before = REGISTRY.snapshot()
                        answers[job.alias()] = self.pipeline.check(
                            job.q1, job.q2, job.ctx_schema, job.hyps,
                            alias=job.alias())
                        job_metrics[job.alias()] = diff_snapshots(
                            before, REGISTRY.snapshot())

            # Per-job orientation: a group may contain both (Q1, Q2) and
            # its mirror (Q2, Q1); counterexample side labels follow each
            # job.
            verdicts = {
                job.job_id: answers[alias].oriented_for(
                    repr_digest=query_side_digest(job.q1))
                for alias, group in groups.items() for job in group}
            sp.attrs["unique"] = len(groups)
            sp.attrs["cache_hits"] = cache_hits
            sp.attrs["workers"] = worker_count if pending else 0
        return self._report(verdicts, len(jobs), len(groups), cache_hits,
                            len(pending), worker_count, job_metrics,
                            sp.duration)

    # -- batches of library rules ------------------------------------------

    def check_rules(self, rules: Iterable,
                    workers: Optional[int] = None) -> BatchReport:
        """Verify a rule corpus; rules are shipped to workers by name."""
        rules = list(rules)
        with span("service.check_rules", rules=len(rules)) as sp:
            answers: Dict[str, Verdict] = {}
            pending = []
            cache_hits = 0
            aliases: Dict[str, str] = {}
            for rule in rules:
                alias = syntactic_alias(rule.lhs, rule.rhs, rule.ctx_schema,
                                        rule.hypotheses)
                aliases[rule.name] = alias
                hit = self.cache.get_by_alias(alias)
                if hit is not None:
                    answers[alias] = hit
                    cache_hits += 1
                elif alias not in {a for a, _ in pending}:
                    pending.append((alias, rule))

            worker_count = self._resolve_workers(workers, len(pending))
            job_metrics: Dict[str, Dict[str, Any]] = {}
            if pending:
                if worker_count > 1:
                    payloads = [(alias, rule.name)
                                for alias, rule in pending]
                    for (alias, verdict, delta), remote in self._map(
                            _run_rule, payloads, worker_count):
                        answers[alias] = verdict
                        self._store(alias, verdict)
                        job_metrics[alias] = delta
                        if remote:
                            REGISTRY.absorb(delta)
                else:
                    for alias, rule in pending:
                        before = REGISTRY.snapshot()
                        answers[alias] = self.pipeline.check(
                            rule.lhs, rule.rhs, rule.ctx_schema,
                            rule.hypotheses, factory=rule.instantiate,
                            alias=alias)
                        job_metrics[alias] = diff_snapshots(
                            before, REGISTRY.snapshot())

            verdicts = {rule.name: answers[aliases[rule.name]]
                        for rule in rules}
            sp.attrs["cache_hits"] = cache_hits
        return self._report(verdicts, len(rules),
                            len({a for a in aliases.values()}), cache_hits,
                            len(pending), worker_count, job_metrics,
                            sp.duration)

    # -- pool plumbing ------------------------------------------------------

    def _report(self, verdicts, total, unique, cache_hits, computed,
                worker_count, job_metrics, wall) -> BatchReport:
        """Assemble the report and publish the batch-level metrics."""
        metrics = empty_snapshot()
        for delta in job_metrics.values():
            metrics = merge_snapshots(metrics, delta)
        _JOBS_TOTAL.inc(total)
        _BATCH_CACHE_HITS.inc(cache_hits)
        _BATCH_WALL.observe(wall)
        report = BatchReport(
            verdicts=verdicts, total_jobs=total, unique_questions=unique,
            cache_hits=cache_hits, computed=computed,
            workers=worker_count if computed else 0, wall_seconds=wall,
            metrics=metrics, job_metrics=job_metrics)
        _log.debug("batch done: %s", report.summary())
        return report

    def _store(self, alias: str, verdict: Verdict) -> None:
        """Fold a worker verdict into the cache (same policy as Pipeline)."""
        if verdict.status is not Status.UNKNOWN \
                or self.pipeline.config.cache_unknown:
            self.cache.put(verdict.fingerprint, verdict, alias=alias)

    def _resolve_workers(self, requested: Optional[int],
                         pending: int) -> int:
        if requested is None:
            requested = self.default_workers
        if requested is None:
            requested = min(4, os.cpu_count() or 1)
        return max(1, min(requested, max(pending, 1)))

    def _map(self, fn, payloads, worker_count):
        """Yield ``(result, remote)`` pairs for every payload.

        ``remote`` tells the caller whether the job's metrics delta came
        from another process (and must be absorbed into this one's
        registry) or was produced inline (already counted here).
        """
        pool = self._ensure_pool(worker_count)
        if pool is None:
            # No fork/spawn available (restricted sandbox): degrade to
            # in-process execution on the service's own pipeline.  Only
            # pool *creation* is guarded — a job-level error must
            # propagate as itself, not trigger a bogus inline re-run.
            for payload in payloads:
                yield _run_inline(self.pipeline, fn, payload), False
            return
        for result in pool.imap_unordered(fn, payloads):
            yield result, True

    def _ensure_pool(self, worker_count: int):
        """The persistent pool, (re)built only when it must grow.

        A pool larger than this batch needs is reused as-is; returns None
        when the platform cannot create worker processes at all.
        """
        if self._pool is not None and self._pool_size < worker_count:
            self.close()
        if self._pool is None:
            ctx = self._pool_context()
            try:
                self._pool = ctx.Pool(processes=worker_count,
                                      initializer=_init_worker,
                                      initargs=(self.pipeline.config,))
            except (OSError, ValueError):
                return None
            self._pool_size = worker_count
        return self._pool

    @staticmethod
    def _pool_context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return multiprocessing.get_context("spawn")


def _run_inline(pipeline: Pipeline, fn,
                payload) -> Tuple[str, Verdict, Dict[str, Any]]:
    global _WORKER_PIPELINE
    previous = _WORKER_PIPELINE
    _WORKER_PIPELINE = pipeline
    try:
        return fn(payload)
    finally:
        _WORKER_PIPELINE = previous


__all__ = ["BatchReport", "Job", "VerificationService"]
