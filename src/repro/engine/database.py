"""Database instances and interpretations for concrete evaluation.

The symbolic side of the library proves rewrite rules for *all* relations,
predicates, and attributes.  The concrete side — this package — evaluates
HoTTSQL queries on actual instances, which serves two purposes:

1. it is the **executable semantics** of the paper's Figure 7 (evaluation
   over an arbitrary commutative semiring), and
2. it is the **testing oracle**: every rule the prover accepts is
   re-checked on randomized instances, and every known-unsound optimizer
   rewrite is refuted by a concrete counterexample.

An :class:`Interpretation` closes a query over its metavariables: it maps
table names to K-relations, predicate/projection/expression metavariables
to Python callables, and function/aggregate symbols to implementations.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.schema import Schema, tuple_of
from ..semiring.krelation import KRelation
from ..semiring.semirings import NAT, Semiring

#: A bag presented to an aggregate: (value, multiplicity) pairs.
Bag = List[Tuple[Any, int]]


def _agg_sum(bag: Bag) -> Any:
    return sum(value * count for value, count in bag)


def _agg_count(bag: Bag) -> int:
    return sum(count for _, count in bag)


def _agg_avg(bag: Bag) -> Any:
    total = sum(count for _, count in bag)
    if total == 0:
        return 0
    return Fraction(_agg_sum(bag), total)


def _agg_max(bag: Bag) -> Any:
    values = [value for value, count in bag if count > 0]
    return max(values) if values else 0


def _agg_min(bag: Bag) -> Any:
    values = [value for value, count in bag if count > 0]
    return min(values) if values else 0


#: Aggregate implementations (paper Sec. 4.2 treats ``agg`` as a function
#: from a single-column relation to a value).
DEFAULT_AGGREGATES: Dict[str, Callable[[Bag], Any]] = {
    "SUM": _agg_sum,
    "COUNT": _agg_count,
    "AVG": _agg_avg,
    "MAX": _agg_max,
    "MIN": _agg_min,
}

def _total_div(a: Any, b: Any) -> Any:
    """Division totalized at zero: floor division on ints (SQL integer
    division), true division when either operand is a float.

    The SQL front end compiles ``/`` to the ``div`` symbol; evaluation
    must be total because the disprover enumerates instances whose
    domains include 0.
    """
    if b == 0:
        return 0
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    return a // b


#: Scalar function symbols usable in :class:`~repro.core.ast.Func`.
DEFAULT_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "div": _total_div,
    "neg": operator.neg,
    "mod": operator.mod,
    "abs": abs,
}

#: Comparison symbols usable in :class:`~repro.core.ast.PredFunc`.
DEFAULT_PREDICATES: Dict[str, Callable[..., bool]] = {
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "neq": operator.ne,
}


@dataclass
class Interpretation:
    """Everything needed to evaluate a (possibly generic) query.

    Attributes:
        relations: table name → K-relation instance.
        schemas: table name → concrete schema (used by loaders/validators).
        predicates: metavariable/symbol name → callable returning bool.
            Used for both ``PredVar`` (applied to the context tuple) and
            ``PredFunc`` (applied to evaluated argument values).
        projections: ``PVar`` name → callable from tuple value to tuple value.
        expressions: ``ExprVar`` name → callable from context tuple to value.
        functions: scalar function symbol → callable.
        aggregates: aggregate symbol → callable on a bag.
    """

    relations: Dict[str, KRelation] = field(default_factory=dict)
    schemas: Dict[str, Schema] = field(default_factory=dict)
    predicates: Dict[str, Callable[..., bool]] = field(default_factory=dict)
    projections: Dict[str, Callable[[Any], Any]] = field(default_factory=dict)
    expressions: Dict[str, Callable[[Any], Any]] = field(default_factory=dict)
    functions: Dict[str, Callable[..., Any]] = field(default_factory=dict)
    aggregates: Dict[str, Callable[[Bag], Any]] = field(default_factory=dict)

    def relation(self, name: str) -> KRelation:
        if name not in self.relations:
            raise KeyError(f"no relation named {name!r} in this interpretation")
        return self.relations[name]

    def function(self, name: str) -> Callable[..., Any]:
        if name in self.functions:
            return self.functions[name]
        if name in DEFAULT_FUNCTIONS:
            return DEFAULT_FUNCTIONS[name]
        raise KeyError(f"no function named {name!r}")

    def predicate(self, name: str) -> Callable[..., bool]:
        if name in self.predicates:
            return self.predicates[name]
        if name in DEFAULT_PREDICATES:
            return DEFAULT_PREDICATES[name]
        raise KeyError(f"no predicate named {name!r}")

    def projection(self, name: str) -> Callable[[Any], Any]:
        if name not in self.projections:
            raise KeyError(f"no projection metavariable named {name!r}")
        return self.projections[name]

    def expression(self, name: str) -> Callable[[Any], Any]:
        if name not in self.expressions:
            raise KeyError(f"no expression metavariable named {name!r}")
        return self.expressions[name]

    def aggregate(self, name: str) -> Callable[[Bag], Any]:
        if name in self.aggregates:
            return self.aggregates[name]
        if name in DEFAULT_AGGREGATES:
            return DEFAULT_AGGREGATES[name]
        raise KeyError(f"no aggregate named {name!r}")

    def with_relation(self, name: str, rel: KRelation,
                      schema: Optional[Schema] = None) -> "Interpretation":
        """Functional update: a copy with one relation replaced."""
        out = Interpretation(
            relations=dict(self.relations), schemas=dict(self.schemas),
            predicates=dict(self.predicates),
            projections=dict(self.projections),
            expressions=dict(self.expressions),
            functions=dict(self.functions), aggregates=dict(self.aggregates))
        out.relations[name] = rel
        if schema is not None:
            out.schemas[name] = schema
        return out


class Database:
    """A named collection of relations over one semiring.

    A light convenience wrapper used by examples and the optimizer: it
    loads flat rows against declared schemas, hands out
    :class:`Interpretation` objects, and re-annotates instances into other
    semirings (set semantics, provenance, ...).
    """

    def __init__(self, semiring: Semiring = NAT) -> None:
        self.semiring = semiring
        self._schemas: Dict[str, Schema] = {}
        self._relations: Dict[str, KRelation] = {}

    def create_table(self, name: str, schema: Schema,
                     rows: Iterable[Any] = ()) -> None:
        """Declare a table and load flat rows (lists of leaf values)."""
        if name in self._schemas:
            raise ValueError(f"table {name!r} already exists")
        self._schemas[name] = schema
        nested = [tuple_of(schema, row) for row in rows]
        self._relations[name] = KRelation.from_bag(self.semiring, nested)

    def insert(self, name: str, row: Any) -> None:
        """Insert one flat row into an existing table."""
        schema = self.schema(name)
        nested = tuple_of(schema, row)
        rel = self._relations[name]
        self._relations[name] = rel.union_all(
            KRelation.from_bag(self.semiring, [nested]))

    def schema(self, name: str) -> Schema:
        if name not in self._schemas:
            raise KeyError(f"no table named {name!r}")
        return self._schemas[name]

    def relation(self, name: str) -> KRelation:
        return self._relations[name]

    def table_names(self) -> List[str]:
        return sorted(self._schemas)

    def interpretation(self, **metavars: Any) -> Interpretation:
        """An interpretation over this database's relations.

        Keyword arguments extend the interpretation's metavariable maps:
        pass ``predicates=...``, ``projections=...``, etc.
        """
        interp = Interpretation(relations=dict(self._relations),
                                schemas=dict(self._schemas))
        for key, value in metavars.items():
            if not hasattr(interp, key):
                raise TypeError(f"unknown interpretation field {key!r}")
            getattr(interp, key).update(value)
        return interp

    def reannotate(self, semiring: Semiring,
                   annotator: Optional[Callable[[str, Any], Any]] = None
                   ) -> "Database":
        """Copy this database into another semiring.

        ``annotator(table, row)`` supplies the new annotation for each row
        (defaults to the target semiring's ``one`` per copy, i.e. converting
        multiplicities through :meth:`Semiring.from_int`).
        """
        out = Database(semiring)
        for name, schema in self._schemas.items():
            out._schemas[name] = schema
            rel = self._relations[name]
            data = {}
            for row, annot in rel.items():
                if annotator is not None:
                    data[row] = annotator(name, row)
                else:
                    data[row] = semiring.from_int(
                        annot if isinstance(annot, int) else 1)
            out._relations[name] = KRelation(semiring, data)
        return out
