"""Figure 9 — complexities of query containment and equivalence.

The paper's Figure 9 is a table of complexity results per SQL fragment.
We regenerate it empirically: for each *decidable* cell we run our decider
on growing query families and report timings whose growth matches the
predicted complexity class (NP blow-up for set containment on hard
instances, polynomial behaviour of the isomorphism check on rigid queries,
the exponential weak-order enumeration for comparisons); undecidable/open
cells are reported as such, together with the library's falsification
fallback (random-instance refutation), which is the practical answer the
paper's line of systems (Cosette) adopted.
"""

import time

import pytest

from repro.core import ast
from repro.core.schema import INT, Leaf, Node
from repro.engine import Interpretation, run_query
from repro.engine.random_instances import random_relation
from repro.semiring import NAT
from repro.theory import (
    Atom,
    CQ,
    CQI,
    UCQ,
    Undecidable,
    chain_query,
    cq_bag_contained,
    cq_bag_equivalent,
    cq_set_contained,
    cqi_set_contained,
    cycle_query,
    rename_apart,
    ucq_set_equivalent,
)


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_figure9_report(report, benchmark):
    report.add("Figure 9 — Complexities of query containment & equivalence")
    report.add("=" * 78)
    report.add(f"{'Fragment':<26}{'Cont.(set)':>13}{'Cont.(bag)':>13}"
               f"{'Equiv.(set)':>13}{'Equiv.(bag)':>13}")
    report.add("-" * 78)
    report.add(f"{'Conjunctive queries':<26}{'NP (impl.)':>13}"
               f"{'open':>13}{'NP (impl.)':>13}{'GI (impl.)':>13}")
    report.add(f"{'Unions of CQs':<26}{'NP (impl.)':>13}"
               f"{'undecidable':>13}{'NP (impl.)':>13}{'open':>13}")
    report.add(f"{'CQs with <':<26}{'Πᵖ₂ (impl.)':>13}"
               f"{'undecidable':>13}{'Πᵖ₂ (impl.)':>13}{'undecidable':>13}")
    report.add(f"{'First-order (SQL)':<26}{'undecidable':>13}"
               f"{'undecidable':>13}{'undecidable':>13}{'undecidable':>13}")
    report.add("")

    # --- empirical series: set containment scaling (cycle family) -------
    # Directed cycles: C_a ⊆ C_b iff a | b, so both positive and negative
    # instances exercise the full homomorphism search.
    report.add("Set containment of directed cycles (NP instances):")
    for k in (3, 5, 7, 9):
        positive, t_pos = _timed(
            lambda k=k: cq_set_contained(cycle_query(k), cycle_query(2 * k)))
        negative, t_neg = _timed(
            lambda k=k: cq_set_contained(cycle_query(k),
                                         cycle_query(k + 1)))
        assert positive and not negative
        report.add(f"  n={k:<3} C_n ⊆ C_2n: {str(positive):<6}"
                   f"{t_pos * 1e3:8.2f} ms   C_n ⊆ C_n+1: "
                   f"{str(negative):<6}{t_neg * 1e3:8.2f} ms")

    # --- bag equivalence (isomorphism) on rigid chains -------------------
    report.add("")
    report.add("Bag equivalence (isomorphism) on chains of length n:")
    for n in (4, 8, 16, 32):
        value, elapsed = _timed(
            lambda n=n: cq_bag_equivalent(chain_query(n),
                                          rename_apart(chain_query(n), "_r")))
        assert value
        report.add(f"  n={n:<3} answer={str(value):<6} {elapsed * 1e3:8.2f} ms")

    # --- CQ with comparisons: weak-order enumeration --------------------
    report.add("")
    report.add("Containment of CQs with < (weak-order enumeration, Πᵖ₂):")
    for n in (2, 3, 4, 5):
        body = tuple(Atom("R", (f"x{i}", f"x{i+1}")) for i in range(n - 1))
        comps = tuple((f"x{i}", f"x{i+1}") for i in range(n - 1))
        q1 = CQI(CQ((), body), comps)
        q2 = CQI(CQ((), body), ())
        value, elapsed = _timed(lambda q1=q1, q2=q2: cqi_set_contained(q1, q2))
        assert value
        report.add(f"  vars={n:<2} answer={str(value):<6} "
                   f"{elapsed * 1e3:8.2f} ms")

    # --- undecidable cells: the falsification fallback -------------------
    report.add("")
    report.add("Undecidable/open cells — falsification fallback "
               "(random-instance refutation):")
    with pytest.raises(Undecidable):
        cq_bag_contained(chain_query(1), chain_query(2))
    schema = Node(Leaf(INT), Leaf(INT))
    r = ast.Table("R", schema)
    lhs = r
    rhs = ast.Distinct(r)
    import random
    rng = random.Random(0)
    refuted_at = None
    for trial in range(100):
        interp = Interpretation()
        interp.relations["R"] = random_relation(rng, schema, NAT)
        if run_query(lhs, interp) != run_query(rhs, interp):
            refuted_at = trial
            break
    assert refuted_at is not None
    report.add(f"  R ≡? DISTINCT R (bag): refuted at random trial "
               f"{refuted_at}")
    report.emit("fig9_decidability")

    # keep a measurable unit for pytest-benchmark
    benchmark(lambda: cq_set_contained(cycle_query(5), cycle_query(7)))


@pytest.mark.parametrize("n", [3, 5, 7])
def test_set_containment_scaling(n, benchmark):
    """NP cell: homomorphism search on directed-cycle instances.

    ``C_n ⊆ C_{2n}`` holds (the length-2n cycle wraps twice around the
    canonical n-cycle); ``C_n ⊆ C_{n+1}`` never does (walk lengths in a
    directed n-cycle are multiples of n).
    """
    positive = benchmark(lambda: cq_set_contained(cycle_query(n),
                                                  cycle_query(2 * n)))
    assert positive is True
    assert cq_set_contained(cycle_query(n), cycle_query(n + 1)) is False


@pytest.mark.parametrize("n", [4, 16, 64])
def test_bag_equivalence_scaling(n, benchmark):
    """GI cell: isomorphism check on rigid chains scales smoothly."""
    q = chain_query(n)
    q2 = rename_apart(q, "_r")
    assert benchmark(lambda: cq_bag_equivalent(q, q2))


@pytest.mark.parametrize("n", [2, 3, 4])
def test_cqi_scaling(n, benchmark):
    """Πᵖ₂ cell: weak-order enumeration grows super-exponentially."""
    body = tuple(Atom("R", (f"x{i}", f"x{i+1}")) for i in range(n - 1))
    comps = tuple((f"x{i}", f"x{i+1}") for i in range(n - 1))
    q1 = CQI(CQ((), body), comps)
    q2 = CQI(CQ((), body), ())
    assert benchmark(lambda: cqi_set_contained(q1, q2))


def test_ucq_equivalence(benchmark):
    """NP cell for unions: Sagiv–Yannakakis disjunct mapping."""
    u1 = UCQ(tuple(chain_query(k) for k in (1, 2, 3)))
    u2 = UCQ(tuple(chain_query(k) for k in (3, 2, 1)))
    assert benchmark(lambda: ucq_set_equivalent(u1, u2))
