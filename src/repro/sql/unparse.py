"""Unparsing: named AST back to SQL text.

The inverse of :mod:`repro.sql.parser` — used to display resolved queries
to users, to serialize rewritten workloads, and (in the test suite) to
property-check the parser: ``parse(unparse(q)) == q`` for every named
query the generator produces.
"""

from __future__ import annotations

from . import nast


def unparse(query: nast.NQuery) -> str:
    """Render a named query as parseable SQL text."""
    if isinstance(query, nast.NSelect):
        return _select_to_sql(query)
    if isinstance(query, nast.NUnionAll):
        return (f"{unparse(query.left)} UNION ALL "
                f"{_operand(query.right)}")
    if isinstance(query, nast.NExcept):
        return f"{unparse(query.left)} EXCEPT {_operand(query.right)}"
    raise TypeError(f"not a named query: {query!r}")


def _operand(query: nast.NQuery) -> str:
    """Right operands of compound queries get parentheses, preserving the
    parser's left associativity on round-trip."""
    text = unparse(query)
    if isinstance(query, (nast.NUnionAll, nast.NExcept)):
        return f"({text})"
    return text


def _select_to_sql(select: nast.NSelect) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    if select.items:
        rendered = []
        for item in select.items:
            text = expr_to_sql(item.expr)
            if item.alias is not None:
                text += f" AS {item.alias}"
            rendered.append(text)
        parts.append(", ".join(rendered))
    else:
        parts.append("*")
    parts.append("FROM")
    from_parts = []
    for item in select.from_items:
        if isinstance(item.source, str):
            if item.alias == item.source:
                from_parts.append(item.source)
            else:
                from_parts.append(f"{item.source} AS {item.alias}")
        else:
            from_parts.append(f"({unparse(item.source)}) AS {item.alias}")
    parts.append(", ".join(from_parts))
    if select.where is not None:
        parts.append("WHERE")
        parts.append(pred_to_sql(select.where))
    if select.group_by is not None:
        parts.append("GROUP BY")
        parts.append(expr_to_sql(select.group_by))
    if select.having is not None:
        parts.append("HAVING")
        parts.append(pred_to_sql(select.having))
    return " ".join(parts)


def pred_to_sql(pred: nast.NPred) -> str:
    """Render a named predicate (fully parenthesized connectives)."""
    if isinstance(pred, nast.NComparison):
        return (f"{expr_to_sql(pred.left)} {pred.op} "
                f"{expr_to_sql(pred.right)}")
    if isinstance(pred, nast.NAnd):
        return f"({pred_to_sql(pred.left)} AND {pred_to_sql(pred.right)})"
    if isinstance(pred, nast.NOr):
        return f"({pred_to_sql(pred.left)} OR {pred_to_sql(pred.right)})"
    if isinstance(pred, nast.NNot):
        return f"NOT {pred_to_sql(pred.operand)}"
    if isinstance(pred, nast.NBoolLit):
        return "TRUE" if pred.value else "FALSE"
    if isinstance(pred, nast.NExists):
        return f"EXISTS ({unparse(pred.query)})"
    raise TypeError(f"not a named predicate: {pred!r}")


def expr_to_sql(expr: nast.NExpr) -> str:
    """Render a named expression."""
    if isinstance(expr, nast.NColumn):
        if expr.table is None:
            return expr.column
        return f"{expr.table}.{expr.column}"
    if isinstance(expr, nast.NLiteral):
        value = expr.value
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, int):
            return str(value)
        if isinstance(value, str):
            return f"'{value}'"
        raise TypeError(f"unrenderable literal {value!r}")
    if isinstance(expr, nast.NBinOp):
        # Operands that are themselves infix get parentheses, so the
        # rendered text re-parses to exactly this tree regardless of
        # the operators' relative precedence.
        left = _binop_operand(expr.left)
        right = _binop_operand(expr.right)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, nast.NFuncCall):
        args = ", ".join(expr_to_sql(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, nast.NAggCall):
        return f"{expr.name}({expr_to_sql(expr.arg)})"
    if isinstance(expr, nast.NAggQuery):
        return f"{expr.name}(({unparse(expr.query)}))"
    raise TypeError(f"not a named expression: {expr!r}")


def _binop_operand(expr: nast.NExpr) -> str:
    text = expr_to_sql(expr)
    return f"({text})" if isinstance(expr, nast.NBinOp) else text


__all__ = ["expr_to_sql", "pred_to_sql", "unparse"]
