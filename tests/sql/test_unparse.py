"""Parser/unparser round-trip: parse(unparse(q)) == q, property-checked."""

from hypothesis import given, settings, strategies as st

from repro.sql import nast
from repro.sql.parser import parse
from repro.sql.unparse import unparse

# ---------------------------------------------------------------------------
# Generators for named ASTs (the parseable fragment)
# ---------------------------------------------------------------------------

idents = st.sampled_from(["a", "b", "c", "price", "qty"])
tables = st.sampled_from(["R", "S", "Emp", "Orders"])
aliases = st.sampled_from(["x", "y", "z", "t1"])

columns = st.builds(
    nast.NColumn,
    table=st.one_of(st.none(), aliases),
    column=idents)

literals = st.one_of(
    st.integers(0, 999).map(nast.NLiteral),
    st.sampled_from(["foo", "bar baz", ""]).map(nast.NLiteral))

exprs = st.recursive(
    st.one_of(columns, literals),
    lambda inner: st.builds(
        nast.NFuncCall,
        name=st.sampled_from(["add", "sub", "mod"]),
        args=st.tuples(inner, inner)),
    max_leaves=4)

comparisons = st.builds(
    nast.NComparison,
    op=st.sampled_from(["=", "<", "<=", ">", ">=", "<>"]),
    left=exprs, right=exprs)


@st.composite
def predicates(draw, depth=2):
    if depth == 0:
        return draw(st.one_of(
            comparisons,
            st.booleans().map(nast.NBoolLit)))
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return draw(comparisons)
    if choice == 1:
        return nast.NAnd(draw(predicates(depth=depth - 1)),
                         draw(predicates(depth=depth - 1)))
    if choice == 2:
        return nast.NOr(draw(predicates(depth=depth - 1)),
                        draw(predicates(depth=depth - 1)))
    if choice == 3:
        return nast.NNot(draw(predicates(depth=depth - 1)))
    return nast.NExists(draw(selects(depth=0)))


@st.composite
def from_items(draw, depth):
    if depth > 0 and draw(st.booleans()):
        return nast.NFromItem(source=draw(selects(depth=depth - 1)),
                              alias=draw(aliases))
    name = draw(tables)
    alias = draw(st.one_of(st.just(name), aliases))
    return nast.NFromItem(source=name, alias=alias)


@st.composite
def selects(draw, depth=1):
    n_from = draw(st.integers(1, 2))
    items_list = []
    froms = []
    seen_aliases = set()
    for _ in range(n_from):
        item = draw(from_items(depth))
        if item.alias in seen_aliases:
            continue
        seen_aliases.add(item.alias)
        froms.append(item)
    if not froms:
        froms = [nast.NFromItem(source="R", alias="R")]
    if draw(st.booleans()):
        for _ in range(draw(st.integers(1, 3))):
            items_list.append(nast.NSelectItem(
                expr=draw(exprs),
                alias=draw(st.one_of(st.none(), idents))))
    where = draw(st.one_of(st.none(), predicates(depth=min(depth + 1, 2))))
    return nast.NSelect(
        distinct=draw(st.booleans()),
        items=tuple(items_list),
        from_items=tuple(froms),
        where=where,
        group_by=None)


@st.composite
def queries(draw):
    q = draw(selects(depth=1))
    for _ in range(draw(st.integers(0, 2))):
        other = draw(selects(depth=0))
        if draw(st.booleans()):
            q = nast.NUnionAll(q, other)
        else:
            q = nast.NExcept(q, other)
    return q


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(queries())
def test_parse_unparse_roundtrip(query):
    assert parse(unparse(query)) == query


@settings(max_examples=100, deadline=None)
@given(queries())
def test_unparse_is_stable(query):
    text = unparse(query)
    assert unparse(parse(text)) == text


class TestExamples:
    def test_simple(self):
        q = parse("SELECT a FROM R")
        assert unparse(q) == "SELECT a FROM R"

    def test_star_and_alias(self):
        q = parse("SELECT * FROM R AS x, S")
        assert unparse(q) == "SELECT * FROM R AS x, S"

    def test_where_parens(self):
        q = parse("SELECT a FROM R WHERE (a = 1 OR b = 2) AND c = 3")
        round_tripped = parse(unparse(q))
        assert round_tripped == q

    def test_group_by(self):
        q = parse("SELECT a, SUM(b) FROM R GROUP BY a")
        assert parse(unparse(q)) == q

    def test_compound_associativity(self):
        q = parse("SELECT a FROM R UNION ALL SELECT a FROM S "
                  "EXCEPT SELECT a FROM T")
        assert parse(unparse(q)) == q

    def test_nested_compound(self):
        q = parse("SELECT a FROM R EXCEPT "
                  "(SELECT a FROM S UNION ALL SELECT a FROM T)")
        assert parse(unparse(q)) == q
