"""The rule-soundness linter: full recall on buggy, zero noise on sound.

These are the acceptance gates of the static-analysis tier: every
deliberately unsound rule in :mod:`repro.rules.buggy` must be flagged
with exactly its annotated diagnostic code, and the two sound corpora
must draw *no* error diagnostics — the warning set is pinned so a new
warning is a conscious decision, not drift.
"""

from repro.analysis.rulecheck import (
    ExpectedDefect,
    Severity,
    lint_rule,
    lint_rules,
)
from repro.rules import all_buggy_rules, all_extended_rules, all_rules


class TestBuggyCorpus:
    def test_every_buggy_rule_is_annotated(self):
        for rule in all_buggy_rules():
            assert isinstance(rule.expected_defect, ExpectedDefect), \
                f"{rule.name} lacks an expected_defect annotation"
            assert rule.expected_defect.code.startswith("RS")
            assert rule.expected_defect.reason

    def test_every_buggy_rule_is_flagged_with_its_code(self):
        """100% recall: the linter reproduces each annotated defect."""
        for rule in all_buggy_rules():
            codes = {d.code for d in lint_rule(rule)
                     if d.severity is Severity.ERROR}
            assert rule.expected_defect.code in codes, \
                (f"{rule.name}: expected {rule.expected_defect.code}, "
                 f"linter reported {sorted(codes)}")

    def test_countermodels_are_described(self):
        """Profile-mismatch errors carry a concrete one-point world."""
        report = lint_rules(list(all_buggy_rules()))
        for diag in report.errors:
            if diag.code in ("RS110", "RS111", "RS112", "RS120"):
                assert "disagree" in diag.message
                assert "[" in diag.message  # the world description


class TestSoundCorpora:
    def test_basic_corpus_has_no_errors(self):
        report = lint_rules(list(all_rules()))
        assert report.errors == [], \
            [str(d) for d in report.errors]

    def test_extended_corpus_is_clean(self):
        report = lint_rules(list(all_extended_rules()))
        assert report.errors == []
        assert report.warnings == []

    def test_basic_corpus_warnings_are_pinned(self):
        """The exact warning set on the sound basic corpus.

        ``index_key_lookup`` introduces the attribute ``a`` on its RHS
        with only a key hypothesis in scope — a genuine (non-error)
        sufficiency observation.  Anything beyond this one is new noise
        and must be triaged, not accumulated.
        """
        report = lint_rules(list(all_rules()))
        pinned = {("RS101", "index_key_lookup")}
        assert {(d.code, d.rule) for d in report.warnings} == pinned


class TestReport:
    def test_report_shape(self):
        rules = list(all_buggy_rules())
        report = lint_rules(rules)
        assert report.rules_checked == len(rules)
        d = report.to_dict()
        assert d["rules_checked"] == len(rules)
        assert d["errors"] == len(report.errors)
        assert all({"code", "severity", "rule", "message"} <= set(e)
                   for e in d["diagnostics"])

    def test_codes_are_stable_strings(self):
        report = lint_rules(list(all_buggy_rules()) + list(all_rules()))
        for diag in report.diagnostics:
            assert diag.code.startswith("RS")
            assert diag.code[2:].isdigit()
