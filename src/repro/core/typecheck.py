"""Schema inference and checking for HoTTSQL syntax trees.

Every denotation in paper Figure 7 is indexed by a context schema Γ and an
output schema σ; this module computes those indices and rejects ill-formed
trees before denotation.  Schema *variables* participate structurally: they
are equal only to themselves, which is exactly the "generic rule" discipline
of paper Sec. 3.3 — a projection metavariable declared on ``SVar("R")`` can
only be applied to that same schema variable, and explicit casts are required
to move predicates between contexts.
"""

from __future__ import annotations

from ..errors import ReproError
from . import ast
from .schema import EMPTY, Leaf, Node, SQLType, Schema, schemas_equal


class TypecheckError(ReproError):
    """Raised when a HoTTSQL tree is not well-formed."""


def infer_query(query: ast.Query, ctx: Schema) -> Schema:
    """Return the output schema of ``query`` in context ``ctx``.

    Implements the schema side of the judgement ``Γ ⊢ q : σ``.
    Successful inferences are stashed on the (immutable) node per
    context — denotation re-infers the same subquery many times along
    one walk, and interned nodes are shared across queries, so the
    stash collapses that to one traversal per (node, context).
    """
    cache = query.__dict__.get("_hc_infer")
    if cache is None:
        cache = {}
        object.__setattr__(query, "_hc_infer", cache)
    hit = cache.get(ctx)
    if hit is None:
        hit = _infer_query(query, ctx)
        cache[ctx] = hit
    return hit


def _infer_query(query: ast.Query, ctx: Schema) -> Schema:
    if isinstance(query, ast.Table):
        return query.schema
    if isinstance(query, ast.Select):
        inner = infer_query(query.query, ctx)
        return infer_projection(query.projection, Node(ctx, inner))
    if isinstance(query, ast.Product):
        return Node(infer_query(query.left, ctx), infer_query(query.right, ctx))
    if isinstance(query, ast.Where):
        inner = infer_query(query.query, ctx)
        check_predicate(query.predicate, Node(ctx, inner))
        return inner
    if isinstance(query, (ast.UnionAll, ast.Except)):
        left = infer_query(query.left, ctx)
        right = infer_query(query.right, ctx)
        if not schemas_equal(left, right):
            op = "UNION ALL" if isinstance(query, ast.UnionAll) else "EXCEPT"
            raise TypecheckError(
                f"{op} branches have different schemas: {left} vs {right}")
        return left
    if isinstance(query, ast.Distinct):
        return infer_query(query.query, ctx)
    raise TypecheckError(f"unknown query node: {query!r}")


def check_predicate(pred: ast.Predicate, ctx: Schema) -> None:
    """Check the judgement ``Γ ⊢ b`` for predicates."""
    if isinstance(pred, ast.PredEq):
        lt = infer_expression(pred.left, ctx)
        rt = infer_expression(pred.right, ctx)
        if lt != rt:
            raise TypecheckError(f"equality between different types: {lt} = {rt}")
        return
    if isinstance(pred, (ast.PredAnd, ast.PredOr)):
        check_predicate(pred.left, ctx)
        check_predicate(pred.right, ctx)
        return
    if isinstance(pred, ast.PredNot):
        check_predicate(pred.operand, ctx)
        return
    if isinstance(pred, (ast.PredTrue, ast.PredFalse)):
        return
    if isinstance(pred, ast.Exists):
        infer_query(pred.query, ctx)
        return
    if isinstance(pred, ast.CastPred):
        inner_ctx = infer_projection(pred.projection, ctx)
        check_predicate(pred.predicate, inner_ctx)
        return
    if isinstance(pred, ast.PredVar):
        if not schemas_equal(pred.schema, ctx):
            raise TypecheckError(
                f"predicate metavariable {pred.name!r} expects context "
                f"{pred.schema} but was used in {ctx} "
                f"(wrap it in CASTPRED to re-scope)")
        return
    if isinstance(pred, ast.PredFunc):
        for arg in pred.args:
            infer_expression(arg, ctx)
        return
    raise TypecheckError(f"unknown predicate node: {pred!r}")


def infer_expression(expr: ast.Expression, ctx: Schema) -> SQLType:
    """Return the base type of ``expr`` in context ``ctx`` (``Γ ⊢ e : τ``)."""
    if isinstance(expr, ast.P2E):
        target = infer_projection(expr.projection, ctx)
        if not isinstance(target, Leaf):
            raise TypecheckError(
                f"P2E requires a projection onto a single attribute, "
                f"got {target}")
        if target.ty != expr.ty:
            raise TypecheckError(
                f"P2E declared type {expr.ty} but projection yields {target.ty}")
        return expr.ty
    if isinstance(expr, ast.Const):
        if not expr.ty.validate(expr.value):
            raise TypecheckError(f"constant {expr.value!r} is not a {expr.ty}")
        return expr.ty
    if isinstance(expr, ast.Func):
        for arg in expr.args:
            infer_expression(arg, ctx)
        return expr.ty
    if isinstance(expr, ast.Agg):
        inner = infer_query(expr.query, ctx)
        if not isinstance(inner, Leaf):
            raise TypecheckError(
                f"aggregate {expr.name!r} requires a single-column query, "
                f"got schema {inner}")
        return expr.ty
    if isinstance(expr, ast.CastExpr):
        inner_ctx = infer_projection(expr.projection, ctx)
        return infer_expression(expr.expression, inner_ctx)
    if isinstance(expr, ast.ExprVar):
        if not schemas_equal(expr.schema, ctx):
            raise TypecheckError(
                f"expression metavariable {expr.name!r} expects context "
                f"{expr.schema} but was used in {ctx} "
                f"(wrap it in CASTEXPR to re-scope)")
        return expr.ty
    raise TypecheckError(f"unknown expression node: {expr!r}")


def infer_projection(proj: ast.Projection, source: Schema) -> Schema:
    """Return the target schema of ``proj`` (``p : Γ ⇒ Γ'``).

    Stash-memoized per (node, source schema), like :func:`infer_query`.
    """
    cache = proj.__dict__.get("_hc_infer")
    if cache is None:
        cache = {}
        object.__setattr__(proj, "_hc_infer", cache)
    hit = cache.get(source)
    if hit is None:
        hit = _infer_projection(proj, source)
        cache[source] = hit
    return hit


def _infer_projection(proj: ast.Projection, source: Schema) -> Schema:
    if isinstance(proj, ast.Star):
        return source
    if isinstance(proj, ast.LeftP):
        if not isinstance(source, Node):
            raise TypecheckError(f"Left applied to non-node schema {source}")
        return source.left
    if isinstance(proj, ast.RightP):
        if not isinstance(source, Node):
            raise TypecheckError(f"Right applied to non-node schema {source}")
        return source.right
    if isinstance(proj, ast.EmptyP):
        return EMPTY
    if isinstance(proj, ast.Compose):
        middle = infer_projection(proj.first, source)
        return infer_projection(proj.second, middle)
    if isinstance(proj, ast.Duplicate):
        return Node(infer_projection(proj.left, source),
                    infer_projection(proj.right, source))
    if isinstance(proj, ast.E2P):
        ty = infer_expression(proj.expression, source)
        if ty != proj.ty:
            raise TypecheckError(
                f"E2P declared type {proj.ty} but expression has type {ty}")
        return Leaf(proj.ty)
    if isinstance(proj, ast.PVar):
        if not schemas_equal(proj.source, source):
            raise TypecheckError(
                f"projection metavariable {proj.name!r} expects source "
                f"{proj.source} but was applied to {source}")
        return proj.target
    raise TypecheckError(f"unknown projection node: {proj!r}")


def well_formed_query(query: ast.Query, ctx: Schema = EMPTY) -> Schema:
    """Typecheck a top-level query; returns its schema or raises."""
    return infer_query(query, ctx)
