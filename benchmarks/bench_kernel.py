#!/usr/bin/env python
"""Term-kernel microbenchmarks: normalize / alpha-key / multiset-match.

Measures the three hot paths the arena-compiled kernel rewrote, as raw
throughput on synthetic selection towers and union ladders (the same
generators the prover-scaling grid uses, so the shapes are the ones the
macro benchmarks exercise):

* ``normalize`` — query → UniNomial normal form, cold memo each rep, on
  **both** kernel backends (``arena`` and ``object``), so the recorded
  ratio is the arena speedup on the paper's core computation.
* ``alpha_key`` — canonical alpha-invariant repr of the normal forms
  (the proof cache's key computation).
* ``multiset_match`` — ``decide_nsums`` on alpha-equal normal-form
  pairs: clause-by-clause multiset matching of relation atoms and
  product factors under variable bijections.

Standalone script::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--smoke] [--json]

Also imported by ``run_all.py`` as the tracked ``kernel_micro``
workload (nightly-gated: every section must sustain nonzero throughput
and both backends must agree on every normal form, alpha key, and
verdict).
"""

import argparse
import json
import sys
import time

TOWERS = (2, 4, 6, 8)
LADDERS = (2, 4, 6)
SMOKE_TOWERS = (2, 4)
SMOKE_LADDERS = (2,)


def _corpus(smoke):
    from bench_prover_scaling import _selection_tower, _union_ladder

    towers = SMOKE_TOWERS if smoke else TOWERS
    ladders = SMOKE_LADDERS if smoke else LADDERS
    pairs = []
    for n in towers:
        pairs.append((_selection_tower(n, False), _selection_tower(n, True)))
    for n in ladders:
        pairs.append((_union_ladder(n, False), _union_ladder(n, True)))
    return pairs


def _normal_forms(pairs):
    """Denote + normalize every query once (warm), for the downstream
    sections; returns aligned NSum pairs."""
    from repro.core.denote import denote_closed
    from repro.core.normalize import normalize, nsum_subst

    forms = []
    for lhs, rhs in pairs:
        d1, d2 = denote_closed(lhs), denote_closed(rhs)
        n1 = normalize(d1.body)
        n2 = nsum_subst(normalize(d2.body),
                        {d2.g: d1.g, d2.t: d1.t})
        forms.append((n1, n2))
    return forms


def bench_normalize(pairs, reps):
    """Cold-memo normalize throughput per backend (queries/second)."""
    from repro.core.denote import denote_closed
    from repro.core.intern import clear_kernel_caches, set_kernel_backend
    from repro.core.normalize import normalize

    bodies = [denote_closed(q).body for pair in pairs for q in pair]
    out = {}
    forms = {}
    for backend in ("arena", "object"):
        previous = set_kernel_backend(backend)
        try:
            wall = 0.0
            for _ in range(reps):
                clear_kernel_caches()
                started = time.perf_counter()
                normalized = [normalize(body) for body in bodies]
                wall += time.perf_counter() - started
            forms[backend] = normalized
            ops = len(bodies) * reps
            out[backend] = {
                "terms": len(bodies), "reps": reps,
                "wall_seconds": wall,
                "terms_per_second": ops / wall if wall else 0.0,
            }
        finally:
            set_kernel_backend(previous)
    out["backends_agree"] = forms["arena"] == forms["object"]
    out["speedup_arena_vs_object"] = (
        out["arena"]["terms_per_second"]
        / out["object"]["terms_per_second"]
        if out["object"]["terms_per_second"] else 0.0)
    return out


def bench_alpha_key(forms, reps):
    """Alpha-invariant repr throughput over the normal forms."""
    from repro.core.intern import clear_kernel_caches
    from repro.solver.cache import nsum_alpha_repr

    sums = [n for pair in forms for n in pair]
    wall = 0.0
    keys = []
    for _ in range(reps):
        clear_kernel_caches()
        started = time.perf_counter()
        keys = [nsum_alpha_repr(n) for n in sums]
        wall += time.perf_counter() - started
    return {
        "terms": len(sums), "reps": reps,
        "wall_seconds": wall,
        "keys_per_second": len(sums) * reps / wall if wall else 0.0,
        "distinct_keys": len(set(keys)),
    }


def bench_multiset_match(forms, reps):
    """decide_nsums throughput on alpha-equal normal-form pairs — the
    multiset-matching core (relation atoms, product factors, variable
    bijections)."""
    from repro.core.equivalence import decide_nsums

    wall = 0.0
    decided = 0
    for _ in range(reps):
        started = time.perf_counter()
        for n1, n2 in forms:
            result = decide_nsums(n1, n2)
            decided += 1
            assert result.equal, "kernel bench pair unexpectedly unequal"
        wall += time.perf_counter() - started
    return {
        "pairs": len(forms), "reps": reps,
        "wall_seconds": wall,
        "pairs_per_second": decided / wall if wall else 0.0,
    }


def run(smoke=False):
    pairs = _corpus(smoke)
    reps = 2 if smoke else 5
    normalize = bench_normalize(pairs, reps)
    forms = _normal_forms(pairs)
    alpha = bench_alpha_key(forms, reps)
    match = bench_multiset_match(forms, max(1, reps * 3))
    wall = (normalize["arena"]["wall_seconds"]
            + normalize["object"]["wall_seconds"]
            + alpha["wall_seconds"] + match["wall_seconds"])
    return {
        "pairs": len(pairs),
        "wall_seconds": wall,
        "normalize": normalize,
        "alpha_key": alpha,
        "multiset_match": match,
    }


def check(result, smoke=False):
    """Gate: throughputs nonzero, backends agree. Returns failure list."""
    failures = []
    if not result["normalize"]["backends_agree"]:
        failures.append("kernel_micro: arena and object backends disagree "
                        "on some normal form")
    for section, key in (("normalize", None),
                         ("alpha_key", "keys_per_second"),
                         ("multiset_match", "pairs_per_second")):
        if section == "normalize":
            for backend in ("arena", "object"):
                if result["normalize"][backend]["terms_per_second"] <= 0:
                    failures.append(f"kernel_micro: zero normalize "
                                    f"throughput on {backend}")
        elif result[section][key] <= 0:
            failures.append(f"kernel_micro: zero {section} throughput")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus / few reps (CI)")
    parser.add_argument("--json", action="store_true",
                        help="print the full result as JSON")
    args = parser.parse_args(argv)
    result = run(smoke=args.smoke)
    failures = check(result, smoke=args.smoke)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        norm = result["normalize"]
        print(f"normalize: arena {norm['arena']['terms_per_second']:.0f}/s "
              f"vs object {norm['object']['terms_per_second']:.0f}/s "
              f"({norm['speedup_arena_vs_object']:.1f}x, agree="
              f"{norm['backends_agree']})")
        print(f"alpha_key: {result['alpha_key']['keys_per_second']:.0f}/s")
        print(f"multiset_match: "
              f"{result['multiset_match']['pairs_per_second']:.0f} pairs/s")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.path.insert(0, "src")
    sys.exit(main())
