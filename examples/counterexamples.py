"""Catching real optimizer mistakes.

The paper opens with production bugs: PostgreSQL #5673 and MySQL #70038
shipped unsound plan rewrites.  This demo runs the library's two defenses
against each unsound rewrite in :mod:`repro.rules.buggy`:

* the **prover** rejects the rule (it cannot construct a proof), and
* the **falsifier** produces a concrete database on which the two plans
  return different answers — the bug report, automatically.

Run:  python examples/counterexamples.py
"""

from repro.rules import all_buggy_rules
from repro.sql.pretty import query_to_str


def main() -> None:
    print("Unsound rewrites: rejected and refuted")
    print("=" * 68)
    for rule in all_buggy_rules():
        print(f"\n{rule.name} — {rule.description}")
        print(f"  LHS: {query_to_str(rule.lhs)}")
        print(f"  RHS: {query_to_str(rule.rhs)}")

        proof = rule.prove()
        print(f"  prover:    {'REJECTED (no proof found)' if not proof.verified else 'accepted?!'}")
        assert not proof.verified

        cex = rule.validate(trials=100)
        assert cex is not None
        print(f"  falsifier: counterexample at trial {cex.trial}")
        for line in cex.describe().splitlines()[1:4]:
            print("   " + line)


if __name__ == "__main__":
    main()
