"""The ``repro``-rooted :mod:`logging` hierarchy.

Every module in the package logs through a child of the ``repro`` root
logger (``repro.solver.pipeline``, ``repro.optimizer.saturate``, ...).
The root carries a :class:`logging.NullHandler`, so a library consumer
who never configures logging sees nothing — the standard library-author
contract — while an application (or the CLI's ``--log-level`` flag) can
attach handlers to ``repro`` once and receive the whole hierarchy.

:func:`configure_logging` is the one-call setup the CLI uses: it attaches
a single stream handler to the root (idempotently — repeated calls
re-level the same handler rather than stacking duplicates) with a compact
``timestamp level logger: message`` format.

At DEBUG level the tracer (:mod:`repro.obs.trace`) additionally logs
every span open/close through ``repro.trace``, which turns a pipeline run
into a readable nested event log without any exporter.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

__all__ = ["ROOT_LOGGER_NAME", "configure_logging", "get_logger"]

#: The root of the package's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

_root = logging.getLogger(ROOT_LOGGER_NAME)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    # Library default: silent unless the application opts in.
    _root.addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` root.

    ``get_logger("solver.pipeline")`` → ``repro.solver.pipeline``; an
    empty name (or a name already rooted at ``repro``) returns the
    corresponding logger unchanged.
    """
    if not name:
        return _root
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


#: The handler :func:`configure_logging` manages (one per process).
_HANDLER: Optional[logging.Handler] = None

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def configure_logging(level: Union[int, str] = logging.INFO,
                      stream=None) -> logging.Handler:
    """Attach (or re-level) the package's stream handler.

    Args:
        level: a :mod:`logging` level number or name (``"DEBUG"``, ...).
        stream: destination stream; defaults to ``sys.stderr``.

    Returns:
        The managed handler, so callers (tests) can detach it again.
    """
    global _HANDLER
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    if _HANDLER is None:
        _HANDLER = logging.StreamHandler(stream or sys.stderr)
        _HANDLER.setFormatter(logging.Formatter(_FORMAT))
        _root.addHandler(_HANDLER)
    elif stream is not None:
        _HANDLER.setStream(stream)
    _HANDLER.setLevel(level)
    _root.setLevel(level)
    return _HANDLER


def reset_logging() -> None:
    """Detach the managed handler (tests use this to isolate state)."""
    global _HANDLER
    if _HANDLER is not None:
        _root.removeHandler(_HANDLER)
        _HANDLER = None
    _root.setLevel(logging.NOTSET)
