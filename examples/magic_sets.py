"""The full magic-set rewrite of paper Sec. 5.1.3 (from Seshadri et al.).

The query: *find each young employee in a big department whose salary
exceeds her department's average salary*.  The magic-set rewrite computes
department averages only for departments that actually have young
employees in big departments.

This example:

1. builds the Emp/Dept database,
2. expresses the original query and the four-view rewritten query in SQL
   (views inlined as FROM subqueries),
3. evaluates both and checks they agree,
4. proves the three primitive semijoin rules the rewrite is composed from
   (introduction, push-through-join, push-through-aggregation).

Run:  python examples/magic_sets.py
"""

from repro import Catalog, Database, INT, compile_sql
from repro.engine import run_query
from repro.rules import rules_by_category

ORIGINAL = """
SELECT e.eid, e.sal
FROM Emp e, Dept d,
     (SELECT did, AVG(sal) AS avgsal FROM Emp GROUP BY did) AS v
WHERE e.did = d.did AND e.did = v.did AND e.age < 30
  AND d.budget > 100000 AND e.sal > v.avgsal
"""

# The rewritten query, with the paper's three views inlined:
#   PartialResult    — young employees in big departments
#   Filter           — the departments that matter
#   LimitedDepAvgSal — averages computed ONLY for those departments
REWRITTEN = """
SELECT p.eid, p.sal
FROM (SELECT e.eid AS eid, e.sal AS sal, e.did AS did
      FROM Emp e, Dept d
      WHERE e.did = d.did AND e.age < 30 AND d.budget > 100000) AS p,
     (SELECT f.did, AVG(e2.sal) AS avgsal
      FROM (SELECT DISTINCT pr.did
            FROM (SELECT e.eid AS eid, e.sal AS sal, e.did AS did
                  FROM Emp e, Dept d
                  WHERE e.did = d.did AND e.age < 30
                    AND d.budget > 100000) AS pr) AS f,
           Emp e2
      WHERE e2.did = f.did
      GROUP BY f.did) AS lim
WHERE p.did = lim.did AND p.sal > lim.avgsal
"""


def build_database():
    catalog = Catalog()
    catalog.add_table("Emp", [("eid", INT), ("did", INT), ("sal", INT),
                              ("age", INT)])
    catalog.add_table("Dept", [("did", INT), ("budget", INT)])

    db = Database()
    employees = [
        # eid, did, sal, age
        [1, 0, 95, 25], [2, 0, 105, 28], [3, 0, 100, 45],
        [4, 1, 200, 24], [5, 1, 100, 29], [6, 1, 150, 50],
        [7, 2, 80, 26], [8, 2, 120, 27],
    ]
    departments = [
        [0, 150000],     # big
        [1, 200000],     # big
        [2, 50000],      # small — its averages need not be computed
    ]
    db.create_table("Emp", catalog.schema_of("Emp"), employees)
    db.create_table("Dept", catalog.schema_of("Dept"), departments)
    return catalog, db


def main() -> None:
    catalog, db = build_database()
    interp = db.interpretation()

    original = compile_sql(ORIGINAL, catalog)
    rewritten = compile_sql(REWRITTEN, catalog)

    out_original = run_query(original.query, interp)
    out_rewritten = run_query(rewritten.query, interp)

    print("Magic-set rewrite (paper Sec. 5.1.3)")
    print("=" * 60)
    print("Young employees in big departments earning above their")
    print("department's average salary:")
    for (eid, sal) in sorted(out_original.support()):
        print(f"  eid={eid}  sal={sal}")
    print()
    print("original  query rows:", sorted(out_original.support()))
    print("rewritten query rows:", sorted(out_rewritten.support()))
    assert out_original == out_rewritten
    print("=> the two plans agree on this instance")
    print()

    print("The rewrite is composed from three primitive semijoin rules,")
    print("each formally verified by the engine:")
    for rule in rules_by_category()["magic"]:
        if rule.name in ("semijoin_intro", "semijoin_push_join",
                         "semijoin_push_agg"):
            proof = rule.prove()
            status = "VERIFIED" if proof.verified else "FAILED"
            print(f"  {rule.name:<22} {status:>10}  "
                  f"({proof.engine_steps} engine steps)")
            assert proof.verified


if __name__ == "__main__":
    main()
