"""The tiered decision pipeline: stages, budgets, corpus acceptance."""

import pytest

from repro.core.schema import INT
from repro.rules import all_buggy_rules, all_rules
from repro.semiring import NAT
from repro.solver import (
    Bound,
    Pipeline,
    PipelineConfig,
    Status,
    replay,
)
from repro.sql import Catalog, compile_sql


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    return cat


@pytest.fixture
def queries(catalog):
    def q(sql):
        return compile_sql(sql, catalog).query
    return q


class TestStages:
    def test_identical_queries_proved_by_alpha_hash(self, queries):
        q = queries("SELECT a FROM R WHERE a = 1")
        verdict = Pipeline().check(q, q)
        assert verdict.proved
        assert verdict.stage == "alpha-hash"

    def test_alias_renaming_proved_by_alpha_hash(self, queries):
        v = Pipeline().check(
            queries("SELECT x.a FROM R AS x"),
            queries("SELECT y.a FROM R AS y"))
        assert v.proved
        assert v.stage == "alpha-hash"

    def test_cq_pair_decided_by_conjunctive_stage(self, queries):
        v = Pipeline().check(
            queries("SELECT DISTINCT a FROM R"),
            queries("SELECT DISTINCT x.a FROM R AS x, R AS y "
                    "WHERE x.a = y.a"))
        assert v.proved
        assert v.stage == "conjunctive"

    def test_cq_negative_is_a_disproof(self, queries):
        # Closed concrete CQs: the procedure is complete, so even with the
        # disprover off the answer is DISPROVED, not UNKNOWN.
        config = PipelineConfig(use_disprover=False)
        v = Pipeline(config).check(
            queries("SELECT DISTINCT a FROM R"),
            queries("SELECT DISTINCT b FROM R"))
        assert v.disproved
        assert v.stage == "conjunctive"

    def test_disprover_produces_replayable_counterexample(
            self, queries, catalog):
        q1 = queries("SELECT a FROM R")
        q2 = queries("SELECT b FROM R")
        v = Pipeline().check(q1, q2)
        assert v.disproved and v.stage == "disprover"
        lhs, rhs = replay(v.counterexample, q1, q2,
                          {"R": catalog.schema_of("R")}, NAT)
        assert lhs != rhs

    def test_unknown_carries_bound_guarantee(self, queries):
        # An inequivalence the bounded disprover cannot see: the queries
        # differ only on values outside the small enumeration domain, and
        # without DISTINCT they sit outside the complete CQ fragment — so
        # the honest answer is UNKNOWN with an explicit bound.
        config = PipelineConfig(
            disprover_bound=Bound.of(max_rows=1, max_multiplicity=1))
        v = Pipeline(config).check(
            queries("SELECT a FROM R WHERE a = 2"),
            queries("SELECT a FROM R WHERE a = 3"))
        assert v.status is Status.UNKNOWN
        assert v.bound is not None and v.bound.exhausted

    def test_step_budget_turns_prover_off_gracefully(self, queries):
        # Note: reordered conjuncts alone no longer exercise the budget —
        # the interned kernel normalizes both to the same canonical form.
        # A DISTINCT self-join needs real squash/bijection search.
        config = PipelineConfig(prover_max_steps=1, use_alpha_hash=False,
                                use_conjunctive=False, use_disprover=False)
        v = Pipeline(config).check(
            queries("SELECT DISTINCT x.a FROM R AS x, R AS y "
                    "WHERE x.a = y.a"),
            queries("SELECT DISTINCT a FROM R"))
        assert v.status is Status.UNKNOWN
        assert "budget" in v.detail

    def test_timings_cover_executed_stages(self, queries):
        v = Pipeline().check(queries("SELECT a FROM R"),
                             queries("SELECT b FROM R"))
        assert "normalize" in v.timings
        assert "disprover" in v.timings
        assert v.total_seconds >= 0

    def test_non_proved_verdicts_report_prover_effort(self, queries):
        # The prover ran before the disprover settled it; its step count
        # must not be reported as zero.
        v = Pipeline().check(queries("SELECT a FROM R"),
                             queries("SELECT b FROM R"))
        assert v.disproved
        assert v.engine_steps > 0


class TestCaching:
    def test_second_check_hits_cache(self, queries):
        pipeline = Pipeline()
        q1 = queries("SELECT DISTINCT a FROM R")
        q2 = queries("SELECT DISTINCT x.a FROM R AS x, R AS y "
                     "WHERE x.a = y.a")
        first = pipeline.check(q1, q2)
        second = pipeline.check(q1, q2)
        assert not first.cached and second.cached
        assert second.status is first.status

    def test_swapped_order_hits_cache(self, queries):
        pipeline = Pipeline()
        q1 = queries("SELECT DISTINCT a FROM R")
        q2 = queries("SELECT DISTINCT x.a FROM R AS x, R AS y "
                     "WHERE x.a = y.a")
        pipeline.check(q1, q2)
        assert pipeline.check(q2, q1).cached

    def test_swapped_cache_hit_reorients_counterexample(self, queries):
        # Cache keys are symmetric; the counterexample's lhs/rhs labels
        # must follow the caller's argument order, not the producer's.
        pipeline = Pipeline()
        q1 = queries("SELECT a FROM R")
        q2 = queries("SELECT a FROM R UNION ALL SELECT a FROM R")
        first = pipeline.check(q1, q2)
        swapped = pipeline.check(q2, q1)
        assert swapped.cached
        assert swapped.counterexample.disagreements == tuple(
            (row, right, left)
            for row, left, right in first.counterexample.disagreements)
        # And the labels must genuinely differ (q2 returns the doubles).
        assert first.counterexample.disagreements \
            != swapped.counterexample.disagreements

    def test_prove_only_keeps_cq_disproof(self, queries):
        v = Pipeline().check(queries("SELECT DISTINCT a FROM R"),
                             queries("SELECT DISTINCT b FROM R"),
                             prove_only=True)
        assert v.disproved
        assert v.stage == "conjunctive"

    def test_unknown_not_cached_by_default(self, queries):
        config = PipelineConfig(
            disprover_bound=Bound.of(max_rows=1, max_multiplicity=1))
        pipeline = Pipeline(config)
        q1 = queries("SELECT a FROM R WHERE a = 2")
        q2 = queries("SELECT a FROM R WHERE a = 3")
        assert pipeline.check(q1, q2).status is Status.UNKNOWN
        assert not pipeline.check(q1, q2).cached


class TestRuleCorpus:
    """The ISSUE's acceptance criterion, as a regression test."""

    @pytest.mark.parametrize("rule", all_rules(), ids=lambda r: r.name)
    def test_every_figure8_rule_is_proved(self, rule):
        verdict = Pipeline().check_rule(rule)
        assert verdict.proved, \
            f"{rule.name}: {verdict.status} ({verdict.detail})"

    @pytest.mark.parametrize("rule", all_buggy_rules(),
                             ids=lambda r: r.name)
    def test_every_buggy_rule_is_disproved_with_witness(self, rule):
        verdict = Pipeline().check_rule(rule)
        assert verdict.disproved, f"{rule.name}: {verdict.status}"
        assert verdict.counterexample is not None
        live = verdict.live_counterexample
        assert live is not None
        assert live.lhs_result != live.rhs_result  # replay the witness

    def test_certify_is_prove_only(self):
        # certify() must answer quickly even for inequivalent inputs — it
        # never falls into the disprover.
        from repro.rules import get_rule
        rule = get_rule("bad_union_distinct")
        pipeline = Pipeline()
        assert pipeline.certify(rule.lhs, rule.rhs,
                                hyps=rule.hypotheses) is False
        verdict = pipeline.check(rule.lhs, rule.rhs, hyps=rule.hypotheses,
                                 prove_only=True)
        assert verdict.status is Status.UNKNOWN
        assert "disprover" not in verdict.timings
