"""``repro serve`` — the long-lived verification daemon.

The batch service forks a worker pool per :class:`~repro.session.Session`
and dies with it; nothing is shared across processes or survives a
restart.  This module is the front door the ROADMAP's "millions of
users" story needs: one process that stays up, keeps its pipeline (and
the interned kernel, and the proof cache) warm, and serves streaming
``check`` / ``batch-check`` / ``optimize`` requests over a trivial
newline-delimited JSON protocol (:mod:`repro.serve.protocol`).

Three mechanisms carry the load:

* **Persistent sharded store** — with ``store_dir`` set, the pipeline's
  cache is a :class:`~repro.serve.store.StoreProofCache`: an in-memory
  LRU hot tier over the disk-backed, file-locked shard store, so proofs
  survive restarts and are shared by every server process pointed at the
  same directory.
* **In-flight dedup** — identical concurrent questions (same symmetric
  syntactic alias) collapse onto a single pipeline run: the first
  requester becomes the *leader* and computes, later arrivals are
  *followers* that wait on the leader's event and fan in on completion.
  Observable via ``serve.inflight`` (gauge), ``serve.dedup_followers_
  total``, and ``serve.pipeline_runs_total``.
* **Persistent worker pool** — leaders dispatch pipeline runs to a
  fixed-size thread pool, bounding concurrent proof search regardless of
  how many connections are open; ``max_inflight`` bounds the number of
  distinct questions in flight (beyond it clients get ``overloaded``
  instead of an ever-growing queue).

Shutdown is graceful: ``shutdown()`` (or the CLI's SIGTERM handler)
stops accepting connections, lets in-flight requests drain through the
pool, and only then returns.
"""

from __future__ import annotations

import socketserver
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.equivalence import NO_HYPOTHESES
from ..errors import ReproError
from ..obs.logs import get_logger
from ..obs.metrics import REGISTRY, counter, gauge
from ..obs.trace import span
from ..optimizer.cost import TableStats
from ..optimizer.planner import optimize
from ..session import parse_table_spec
from ..solver.cache import ProofCache, query_side_digest, syntactic_alias
from ..solver.pipeline import Pipeline, PipelineConfig
from ..solver.verdict import Verdict
from ..sql.decompile import plan_to_sql
from ..sql.resolve import Catalog, compile_sql
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
    read_message,
)
from .store import ShardedProofStore, StoreProofCache

_log = get_logger("serve.server")

_REQUESTS = counter("serve.requests_total")
_ERRORS = counter("serve.errors_total")
_CONNECTIONS = counter("serve.connections_total")
_PIPELINE_RUNS = counter("serve.pipeline_runs_total")
_DEDUP_FOLLOWERS = counter("serve.dedup_followers_total")
_INFLIGHT = gauge("serve.inflight")

#: How long a follower waits for its leader before giving up (seconds).
FOLLOWER_TIMEOUT = 600.0


class ServeError(ReproError):
    """Server-side request failure with a protocol error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class _InflightEntry:
    """One in-progress question: the leader computes, followers wait."""

    __slots__ = ("event", "verdict", "error", "followers")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.verdict: Optional[Verdict] = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, handler, repro_server: "ReproServer"):
        self.repro = repro_server
        super().__init__(address, handler)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a stream of request lines, a stream of responses."""

    def handle(self) -> None:  # pragma: no cover - thin I/O shell
        self.server.repro.handle_connection(self.rfile, self.wfile,
                                            self.client_address)


class ReproServer:
    """The daemon: a TCP listener over one warm pipeline + proof store.

    Args:
        host, port: bind address (``port=0`` picks an ephemeral port;
            read the actual one from :attr:`address`).
        tables: default table declarations (``"R(a:int,b:int)"`` specs)
            used when a request carries no ``tables`` of its own.
        store_dir: directory of the sharded proof store; None keeps the
            cache purely in-memory (still warm, but not shared/durable).
        shards: shard count when *creating* a store (an existing store's
            layout wins).
        workers: size of the pipeline thread pool.
        max_inflight: cap on distinct in-flight questions.
        hot_size: in-memory hot-tier LRU capacity.
        config: pipeline stage knobs.
        max_request_bytes: per-line payload cap.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 tables: Sequence[str] = (),
                 store_dir: Optional[str] = None,
                 shards: int = 16,
                 workers: int = 4,
                 max_inflight: int = 64,
                 hot_size: int = 4096,
                 config: Optional[PipelineConfig] = None,
                 max_request_bytes: int = MAX_LINE_BYTES) -> None:
        if workers < 1:
            raise ServeError("bad-request",
                             f"workers must be positive, got {workers}")
        if max_inflight < 1:
            raise ServeError("bad-request",
                             f"max_inflight must be positive, "
                             f"got {max_inflight}")
        self.default_tables: Tuple[str, ...] = tuple(tables)
        self.store: Optional[ShardedProofStore] = None
        if store_dir is not None:
            self.store = ShardedProofStore(store_dir, shards=shards)
            cache: ProofCache = StoreProofCache(self.store,
                                               max_size=hot_size)
        else:
            cache = ProofCache(max_size=hot_size)
        self.pipeline = Pipeline(config, cache=cache)
        self.workers = workers
        self.max_inflight = max_inflight
        self.max_request_bytes = max_request_bytes
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self._inflight: Dict[str, _InflightEntry] = {}
        self._inflight_lock = threading.Lock()
        self._catalogs: Dict[Tuple[str, ...], Catalog] = {}
        self._catalog_lock = threading.Lock()
        #: (catalog key, SQL text) → compiled query: a warm request's
        #: cost is a dict probe + a cache probe, not a re-parse.
        self._compiled: Dict[Tuple[Tuple[str, ...], str], Any] = {}
        self._compiled_lock = threading.Lock()
        self._shutting_down = threading.Event()
        self._started = time.monotonic()
        self._serve_thread: Optional[threading.Thread] = None
        self._tcp = _TCPServer((host, port), _Handler, self)
        self.address: Tuple[str, int] = self._tcp.server_address[:2]

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` is called."""
        _log.info("serving on %s:%d", *self.address)
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "ReproServer":
        """Serve on a background thread (tests and embedded use)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept",
            daemon=True)
        self._serve_thread.start()
        return self

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight work, close down."""
        if self._shutting_down.is_set():
            return
        self._shutting_down.set()
        self._tcp.shutdown()  # stops serve_forever; waits for its loop
        self._executor.shutdown(wait=drain)
        self._tcp.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
        _log.info("serve daemon stopped (drained=%s)", drain)

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- connection loop ------------------------------------------------------

    def handle_connection(self, rfile, wfile, peer) -> None:
        """Serve request lines on one connection until EOF or a framing
        error (protocol errors get a response; I/O errors end quietly)."""
        _CONNECTIONS.inc()
        _log.debug("connection from %s", peer)
        while not self._shutting_down.is_set():
            try:
                raw = read_message(rfile, self.max_request_bytes)
            except ProtocolError as exc:
                # The line never terminated: answer, then drop the
                # connection (there is no way to find the next frame).
                self._safe_write(wfile, error_response(exc.code, str(exc)))
                _ERRORS.inc()
                return
            except OSError:
                return  # peer vanished mid-read
            if raw is None:
                return  # clean EOF
            response = self.handle_request_line(raw)
            if not self._safe_write(wfile, response):
                return  # peer vanished mid-write

    @staticmethod
    def _safe_write(wfile, response: Dict[str, Any]) -> bool:
        try:
            wfile.write(encode(response))
            wfile.flush()
            return True
        except (OSError, ValueError):
            return False

    # -- request dispatch -----------------------------------------------------

    def handle_request_line(self, raw: bytes) -> Dict[str, Any]:
        """One raw request line → one response dict (never raises)."""
        request_id = None
        try:
            message = decode_request(raw)
            request_id = message.get("id")
            op = message["op"]
            if self._shutting_down.is_set() and op != "stats":
                return error_response("shutting-down",
                                      "server is draining", request_id)
            _REQUESTS.inc()
            with span("serve.request", op=op):
                handler = getattr(self, "_op_" + op.replace("-", "_"))
                return ok_response(handler(message), request_id)
        except ProtocolError as exc:
            _ERRORS.inc()
            return error_response(exc.code, str(exc),
                                  exc.request_id if request_id is None
                                  else request_id)
        except ServeError as exc:
            _ERRORS.inc()
            return error_response(exc.code, str(exc), request_id)
        except ReproError as exc:
            _ERRORS.inc()
            return error_response("compile-error",
                                  f"{type(exc).__name__}: {exc}",
                                  request_id)
        except Exception as exc:  # traceback stays server-side
            _log.exception("internal error handling request")
            _ERRORS.inc()
            return error_response("internal",
                                  f"{type(exc).__name__}: {exc}",
                                  request_id)

    # -- compilation ----------------------------------------------------------

    def _catalog_for(self, specs: Sequence[str]) -> Catalog:
        key = tuple(specs)
        with self._catalog_lock:
            catalog = self._catalogs.get(key)
            if catalog is None:
                catalog = Catalog()
                for spec in key:
                    name, columns = parse_table_spec(spec)
                    catalog.add_table(name, columns)
                if len(self._catalogs) > 256:
                    self._catalogs.clear()  # crude bound; rebuilt on demand
                self._catalogs[key] = catalog
            return catalog

    def _request_catalog(self, message: Dict[str, Any]) -> Catalog:
        tables = message.get("tables")
        if tables is None:
            tables = self.default_tables
        if not isinstance(tables, (list, tuple)) \
                or not all(isinstance(t, str) for t in tables):
            raise ProtocolError("bad-request",
                                '"tables" must be a list of '
                                '"R(a:int,b:int)" spec strings')
        return self._catalog_for(tables)

    def _compile_cached(self, sql: str, catalog: Catalog,
                        catalog_key: Tuple[str, ...]):
        key = (catalog_key, sql)
        with self._compiled_lock:
            query = self._compiled.get(key)
        if query is None:
            query = compile_sql(sql, catalog).query
            with self._compiled_lock:
                if len(self._compiled) > 4096:
                    self._compiled.clear()  # crude bound; rebuilt on demand
                self._compiled[key] = query
        return query

    def _compile_pair(self, message: Dict[str, Any],
                      sql1: str, sql2: str):
        catalog = self._request_catalog(message)
        catalog_key = tuple(message.get("tables") or self.default_tables)
        return (self._compile_cached(sql1, catalog, catalog_key),
                self._compile_cached(sql2, catalog, catalog_key), catalog)

    @staticmethod
    def _require_sql(message: Dict[str, Any], *fields: str) -> List[str]:
        values = []
        for name in fields:
            value = message.get(name)
            if not isinstance(value, str) or not value.strip():
                raise ProtocolError("bad-request",
                                    f'"{name}" must be a non-empty '
                                    f'SQL string')
            values.append(value)
        return values

    # -- in-flight dedup ------------------------------------------------------

    def _checked(self, q1, q2, key: str,
                 config: Optional[PipelineConfig] = None
                 ) -> Tuple[Verdict, str]:
        """Answer one compiled question, deduplicating in-flight work.

        Returns ``(verdict, role)`` where role is ``"leader"`` (this
        request ran the pipeline) or ``"follower"`` (it fanned in on a
        concurrent identical question).  ``config`` is a per-request
        pipeline override; only verdict-neutral knobs (disprover
        parallelism) may differ, so followers can safely fan in on a
        leader that ran with different knobs.
        """
        with self._inflight_lock:
            entry = self._inflight.get(key)
            if entry is None:
                if len(self._inflight) >= self.max_inflight:
                    raise ServeError(
                        "overloaded",
                        f"{self.max_inflight} questions already in "
                        f"flight; retry later")
                entry = _InflightEntry()
                self._inflight[key] = entry
                leader = True
                _INFLIGHT.set(len(self._inflight))
            else:
                entry.followers += 1
                leader = False
                _DEDUP_FOLLOWERS.inc()
        if leader:
            try:
                _PIPELINE_RUNS.inc()
                future = self._executor.submit(
                    self.pipeline.check, q1, q2, None, NO_HYPOTHESES,
                    alias=key, config=config)
                entry.verdict = future.result()
            except BaseException as exc:
                entry.error = exc
                raise
            finally:
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                    _INFLIGHT.set(len(self._inflight))
                entry.event.set()
            return entry.verdict, "leader"
        if not entry.event.wait(FOLLOWER_TIMEOUT):
            raise ServeError("internal",
                             "timed out waiting for the in-flight "
                             "leader of an identical question")
        if entry.error is not None or entry.verdict is None:
            raise ServeError("internal",
                             f"the in-flight leader of this question "
                             f"failed: {entry.error}")
        # The alias key is symmetric, so the leader may have computed the
        # mirrored pair; re-orient any counterexample to this caller.
        verdict = entry.verdict.oriented_for(
            repr_digest=query_side_digest(q1))
        return verdict, "follower"

    # -- ops ------------------------------------------------------------------

    def _op_ping(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "uptime_seconds":
                time.monotonic() - self._started}

    def _check_result(self, verdict: Verdict, role: str,
                      wall: float) -> Dict[str, Any]:
        return {
            "verdict": verdict.to_dict(),
            "status": verdict.status.value,
            "stage": verdict.stage,
            "cached": verdict.cached,
            "dedup": role,
            "wall_seconds": wall,
        }

    def _disprover_config(self, message: Dict[str, Any]
                          ) -> Optional[PipelineConfig]:
        """Per-request disprover knobs, or None for the server default."""
        workers = message.get("disprover_workers")
        batch = message.get("disprover_batch_size")
        if workers is None and batch is None:
            return None
        if workers is not None and (not isinstance(workers, int)
                                    or isinstance(workers, bool)
                                    or workers < 1):
            raise ProtocolError("bad-request",
                                '"disprover_workers" must be a positive '
                                'integer')
        if batch is not None and (not isinstance(batch, int)
                                  or isinstance(batch, bool) or batch < 1):
            raise ProtocolError("bad-request",
                                '"disprover_batch_size" must be a '
                                'positive integer')
        cfg = self.pipeline.config
        return replace(
            cfg,
            disprover_workers=(workers if workers is not None
                               else cfg.disprover_workers),
            disprover_batch_size=(batch if batch is not None
                                  else cfg.disprover_batch_size))

    def _op_check(self, message: Dict[str, Any]) -> Dict[str, Any]:
        sql1, sql2 = self._require_sql(message, "sql1", "sql2")
        config = self._disprover_config(message)
        started = time.perf_counter()
        q1, q2, _ = self._compile_pair(message, sql1, sql2)
        verdict, role = self._checked(q1, q2, syntactic_alias(q1, q2),
                                      config=config)
        return self._check_result(verdict, role,
                                  time.perf_counter() - started)

    def _op_batch_check(self, message: Dict[str, Any]) -> Dict[str, Any]:
        pairs = message.get("pairs")
        if not isinstance(pairs, list) or not pairs:
            raise ProtocolError("bad-request",
                                '"pairs" must be a non-empty list of '
                                '[SQL1, SQL2] pairs')
        config = self._disprover_config(message)
        results = []
        for i, pair in enumerate(pairs):
            if not (isinstance(pair, (list, tuple)) and len(pair) == 2
                    and all(isinstance(s, str) for s in pair)):
                raise ProtocolError("bad-request",
                                    f"pair #{i} is not a [SQL1, SQL2] "
                                    f"list of strings")
            started = time.perf_counter()
            q1, q2, _ = self._compile_pair(message, pair[0], pair[1])
            verdict, role = self._checked(q1, q2, syntactic_alias(q1, q2),
                                          config=config)
            results.append(self._check_result(
                verdict, role, time.perf_counter() - started))
        return {"results": results, "total": len(results)}

    def _op_optimize(self, message: Dict[str, Any]) -> Dict[str, Any]:
        (sql,) = self._require_sql(message, "sql")
        rows = message.get("rows") or {}
        if not isinstance(rows, dict):
            raise ProtocolError("bad-request",
                                '"rows" must be a {table: cardinality} '
                                'object')
        strategy = message.get("strategy", "saturation")
        max_plans = message.get("max_plans", 400)
        if not isinstance(max_plans, int) or max_plans < 1:
            raise ProtocolError("bad-request",
                                '"max_plans" must be a positive integer')
        catalog = self._request_catalog(message)
        q = compile_sql(sql, catalog).query
        started = time.perf_counter()
        try:
            stats = TableStats({str(k): float(v) for k, v in rows.items()})
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad-request",
                                f'bad "rows" cardinality: {exc}') from exc
        result = optimize(q, stats, max_plans=max_plans,
                          certify=bool(message.get("certify", True)),
                          pipeline=self.pipeline, strategy=strategy)
        try:
            sql_out: Optional[str] = plan_to_sql(result.best_plan, catalog)
        except ReproError:
            sql_out = None
        return {
            "original_cost": result.original_cost,
            "best_cost": result.best_cost,
            "improved": result.improved,
            "certified": result.certified,
            "applied_rules": list(result.applied_rules),
            "plans_explored": result.plans_explored,
            "strategy": result.strategy,
            "sql": sql_out,
            "wall_seconds": time.perf_counter() - started,
        }

    def _op_stats(self, message: Dict[str, Any]) -> Dict[str, Any]:
        cache = self.pipeline.cache
        if isinstance(cache, StoreProofCache):
            cache_stats: Dict[str, Any] = cache.stats()
        else:
            cache_stats = {"hot_entries": len(cache),
                           "hot_max_size": cache.max_size,
                           "hits": cache.hits, "misses": cache.misses,
                           "hit_rate": cache.hit_rate, "store": None}
        return {
            "server": {
                "address": list(self.address),
                "uptime_seconds": time.monotonic() - self._started,
                "workers": self.workers,
                "max_inflight": self.max_inflight,
                "inflight": len(self._inflight),
                "requests_total": _REQUESTS.value,
                "errors_total": _ERRORS.value,
                "connections_total": _CONNECTIONS.value,
                "pipeline_runs_total": _PIPELINE_RUNS.value,
                "dedup_followers_total": _DEDUP_FOLLOWERS.value,
                "shutting_down": self._shutting_down.is_set(),
            },
            "cache": cache_stats,
            "metrics": REGISTRY.snapshot(),
        }

    def _op_shutdown(self, message: Dict[str, Any]) -> Dict[str, Any]:
        # Acknowledge first, then drain on a separate thread — shutdown
        # blocks on the handler threads, this being one of them.
        threading.Thread(target=self.shutdown, kwargs={"drain": True},
                         name="repro-serve-shutdown",
                         daemon=True).start()
        return {"shutting_down": True}


__all__ = ["FOLLOWER_TIMEOUT", "ReproServer", "ServeError"]
