"""Denotational semantics: Figure 7, context threading (Figure 6)."""


from repro.core import ast
from repro.core.denote import (
    denote_closed,
    denote_closed_predicate,
    denote_predicate,
    denote_projection,
    denote_query,
)
from repro.core.schema import EMPTY, INT, Leaf, Node, SVar
from repro.core.uninomial import (
    TApp,
    TPair,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UPred,
    URel,
    USquash,
    USum,
    fresh_var,
)

SR = SVar("sR")
SS = SVar("sS")
R = ast.Table("R", SR)
S = ast.Table("S", SS)
S_SAME = ast.Table("S", SR)


def _gt(ctx=EMPTY, schema=SR):
    return fresh_var(ctx, "g"), fresh_var(schema, "t")


class TestQueryDenotation:
    def test_table_ignores_context(self):
        g, t = _gt()
        assert denote_query(R, EMPTY, g, t) == URel("R", t)

    def test_product_is_multiplication(self):
        g, t = _gt(schema=Node(SR, SS))
        out = denote_query(ast.Product(R, S), EMPTY, g, t)
        assert isinstance(out, UMul)
        assert isinstance(out.left, URel) and out.left.name == "R"
        assert isinstance(out.right, URel) and out.right.name == "S"
        # The operands consume the two halves of the output tuple.
        from repro.core.uninomial import TFst, TSnd
        assert out.left.arg == TFst(t)
        assert out.right.arg == TSnd(t)

    def test_union_all_is_addition(self):
        g, t = _gt()
        out = denote_query(ast.UnionAll(R, S_SAME), EMPTY, g, t)
        assert out == UAdd(URel("R", t), URel("S", t))

    def test_except_is_negation(self):
        g, t = _gt()
        out = denote_query(ast.Except(R, S_SAME), EMPTY, g, t)
        assert isinstance(out, UMul)
        assert isinstance(out.right, UNeg)
        assert out.right.arg == URel("S", t)

    def test_distinct_is_squash(self):
        g, t = _gt()
        out = denote_query(ast.Distinct(R), EMPTY, g, t)
        assert out == USquash(URel("R", t))

    def test_where_extends_context_with_pair(self):
        b = ast.PredVar("b", Node(EMPTY, SR))
        g, t = _gt()
        out = denote_query(ast.Where(R, b), EMPTY, g, t)
        assert isinstance(out, UMul)
        assert out.right == UPred("b", (TPair(g, t),))

    def test_select_introduces_sum(self):
        p = ast.PVar("p", Node(EMPTY, SR), Leaf(INT))
        g, t = _gt(schema=Leaf(INT))
        out = denote_query(ast.Select(p, R), EMPTY, g, t)
        assert isinstance(out, USum)
        body = out.body
        assert isinstance(body, UMul)
        assert isinstance(body.left, UEq)

    def test_figure_1_denotation_shape(self):
        # (⟦R⟧ t + ⟦S⟧ t) × ⟦b⟧ (g, t)
        b = ast.PredVar("b", Node(EMPTY, SR))
        g, t = _gt()
        out = denote_query(ast.Where(ast.UnionAll(R, S_SAME), b), EMPTY, g, t)
        assert out == UMul(UAdd(URel("R", t), URel("S", t)),
                           UPred("b", (TPair(g, t),)))


class TestPredicateDenotation:
    def test_connectives(self):
        g = fresh_var(EMPTY, "g")
        t = ast.PredTrue()
        f = ast.PredFalse()
        from repro.core.uninomial import ONE, ZERO
        assert denote_predicate(t, EMPTY, g) == ONE
        assert denote_predicate(f, EMPTY, g) == ZERO
        assert denote_predicate(ast.PredNot(f), EMPTY, g) == ONE
        assert denote_predicate(ast.PredAnd(t, f), EMPTY, g) == ZERO
        assert denote_predicate(ast.PredOr(f, f), EMPTY, g) == ZERO

    def test_or_squashes(self):
        g = fresh_var(Node(EMPTY, SR), "g")
        b1 = ast.PredVar("b1", Node(EMPTY, SR))
        b2 = ast.PredVar("b2", Node(EMPTY, SR))
        out = denote_predicate(ast.PredOr(b1, b2), Node(EMPTY, SR), g)
        assert isinstance(out, USquash)
        assert isinstance(out.arg, UAdd)

    def test_exists_is_squashed_sum(self):
        g = fresh_var(EMPTY, "g")
        out = denote_predicate(ast.Exists(R), EMPTY, g)
        assert isinstance(out, USquash)
        assert isinstance(out.arg, USum)

    def test_castpred_applies_projection(self):
        b = ast.PredVar("b", SR)
        ctx = Node(EMPTY, SR)
        g = fresh_var(ctx, "g")
        out = denote_predicate(ast.CastPred(ast.RIGHT, b), ctx, g)
        from repro.core.uninomial import tsnd
        assert out == UPred("b", (tsnd(g),))

    def test_predfunc_uninterpreted(self):
        ctx = Node(EMPTY, SR)
        g = fresh_var(ctx, "g")
        pred = ast.PredFunc("lt", (ast.Const(1, INT), ast.Const(2, INT)))
        out = denote_predicate(pred, ctx, g)
        assert isinstance(out, UPred)
        assert out.name == "lt"


class TestContextThreading:
    """The Figure 6 discipline: each nesting level adds one Left step."""

    def test_correlated_exists_sees_outer_tuple(self):
        # R WHERE EXISTS (S WHERE p(S-tuple) = p(R-tuple))
        p = ast.PVar("p", SR, Leaf(INT))
        ps = ast.PVar("ps", SS, Leaf(INT))
        inner_pred = ast.PredEq(
            ast.P2E(ast.path(ast.RIGHT, ps), INT),           # inner S tuple
            ast.P2E(ast.path(ast.LEFT, ast.RIGHT, p), INT))  # outer R tuple
        q = ast.Where(R, ast.Exists(ast.Where(S, inner_pred)))
        d = denote_closed(q)
        rendered = str(d.body)
        # The outer R tuple is reached via the context; the inner S tuple
        # via the innermost Σ binder:  ⟦R⟧ t × ‖Σ s. ⟦S⟧ s × (ps(s) = p(t))‖
        assert "ps(" in rendered and "= p(" in rendered
        assert "⟦R⟧" in rendered and "⟦S⟧" in rendered

    def test_three_level_nesting_typechecks_and_denotes(self):
        # Figure 6's three-level correlated query skeleton.
        st_ = SVar("sT")
        T = ast.Table("T", st_)
        p1 = ast.PVar("p1", SR, Leaf(INT))
        p2 = ast.PVar("p2", SS, Leaf(INT))
        p3 = ast.PVar("p3", st_, Leaf(INT))
        level3 = ast.Where(T, ast.PredEq(
            ast.P2E(ast.path(ast.RIGHT, p3), INT),
            ast.P2E(ast.path(ast.LEFT, ast.RIGHT, p2), INT)))
        level2 = ast.Where(S, ast.PredAnd(
            ast.PredEq(ast.P2E(ast.path(ast.RIGHT, p2), INT),
                       ast.P2E(ast.path(ast.LEFT, ast.RIGHT, p1), INT)),
            ast.Exists(level3)))
        level1 = ast.Where(R, ast.Exists(level2))
        d = denote_closed(level1)
        assert "⟦T⟧" in str(d.body)

    def test_denote_closed_predicate(self):
        b = ast.PredVar("b", Node(EMPTY, SR))
        out = denote_closed_predicate(b, Node(EMPTY, SR))
        assert isinstance(out, UPred)


class TestProjectionDenotation:
    def test_pvar_is_uninterpreted_application(self):
        p = ast.PVar("p", SR, Leaf(INT))
        g = fresh_var(SR, "g")
        out = denote_projection(p, SR, g)
        assert out == TApp("p", (g,), Leaf(INT))

    def test_duplicate_pairs(self):
        ctx = Node(SR, SS)
        g = fresh_var(ctx, "g")
        out = denote_projection(ast.Duplicate(ast.RIGHT, ast.LEFT), ctx, g)
        from repro.core.uninomial import tfst, tsnd
        assert out == TPair(tsnd(g), tfst(g))

    def test_compose_chains(self):
        ctx = Node(Node(SR, SS), SR)
        g = fresh_var(ctx, "g")
        out = denote_projection(ast.path(ast.LEFT, ast.RIGHT), ctx, g)
        from repro.core.uninomial import TFst, TSnd
        assert out == TSnd(TFst(g))
