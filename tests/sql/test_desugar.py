"""Outer joins via the Sec. 7 encoding, checked against a reference."""

import random

import pytest

from repro.core import ast
from repro.core.schema import INT, Leaf, Node
from repro.core.typecheck import well_formed_query
from repro.engine import Interpretation, run_query
from repro.engine.random_instances import random_relation
from repro.semiring import KRelation, NAT
from repro.sql.desugar import (
    const_tuple_projection,
    inner_join,
    left_outer_join,
    right_outer_join,
)

SCHEMA = Node(Leaf(INT), Leaf(INT))
L = ast.Table("L", SCHEMA)
R = ast.Table("Rt", SCHEMA)

#: Join on first columns: l.0 = r.0, expressed over node σL σR.
ON = ast.PredEq(ast.P2E(ast.path(ast.LEFT, ast.LEFT), INT),
                ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT))

#: The NULL stand-in row (outside the generated domain {0,1,2}).
PAD = (-1, -1)


def _reference_loj(left_rel, right_rel):
    """Reference left outer join on plain dictionaries."""
    out = {}
    for lrow, lm in left_rel.items():
        matches = [(rrow, rm) for rrow, rm in right_rel.items()
                   if lrow[0] == rrow[0]]
        if matches:
            for rrow, rm in matches:
                key = (lrow, rrow)
                out[key] = out.get(key, 0) + lm * rm
        else:
            key = (lrow, PAD)
            out[key] = out.get(key, 0) + lm
    return out


def _interp(seed):
    rng = random.Random(seed)
    interp = Interpretation()
    interp.relations["L"] = random_relation(rng, SCHEMA, NAT, max_rows=4)
    interp.relations["Rt"] = random_relation(rng, SCHEMA, NAT, max_rows=4)
    return interp


class TestConstTupleProjection:
    def test_builds_matching_shape(self):
        proj = const_tuple_projection(SCHEMA, [7, 8])
        assert well_formed_query(
            ast.Select(proj, ast.Table("L", SCHEMA))) == SCHEMA

    def test_value_count_checked(self):
        with pytest.raises(ValueError):
            const_tuple_projection(SCHEMA, [7])
        with pytest.raises(ValueError):
            const_tuple_projection(SCHEMA, [7, 8, 9])


class TestLeftOuterJoin:
    def test_typechecks(self):
        q = left_outer_join(L, R, ON, SCHEMA, PAD)
        assert well_formed_query(q) == Node(SCHEMA, SCHEMA)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference(self, seed):
        interp = _interp(seed)
        q = left_outer_join(L, R, ON, SCHEMA, PAD)
        ours = dict(run_query(q, interp).items())
        reference = _reference_loj(interp.relations["L"],
                                   interp.relations["Rt"])
        assert ours == reference

    def test_unmatched_rows_padded(self):
        interp = Interpretation()
        interp.relations["L"] = KRelation(NAT, {(1, 10): 2, (2, 20): 1})
        interp.relations["Rt"] = KRelation(NAT, {(1, 99): 1})
        q = left_outer_join(L, R, ON, SCHEMA, PAD)
        out = dict(run_query(q, interp).items())
        assert out == {
            ((1, 10), (1, 99)): 2,       # matched, multiplicity kept
            ((2, 20), PAD): 1,           # unmatched, padded
        }

    def test_reduces_to_inner_join_when_total(self):
        # When every left row matches, LOJ ≡ inner join on the instance.
        interp = Interpretation()
        interp.relations["L"] = KRelation(NAT, {(1, 10): 1})
        interp.relations["Rt"] = KRelation(NAT, {(1, 0): 3})
        loj = run_query(left_outer_join(L, R, ON, SCHEMA, PAD), interp)
        ij = run_query(inner_join(L, R, ON), interp)
        assert loj == ij


class TestRightOuterJoin:
    def test_typechecks(self):
        q = right_outer_join(L, R, ON, SCHEMA, PAD)
        assert well_formed_query(q) == Node(SCHEMA, SCHEMA)

    def test_unmatched_right_rows_padded(self):
        interp = Interpretation()
        interp.relations["L"] = KRelation(NAT, {(1, 10): 1})
        interp.relations["Rt"] = KRelation(NAT, {(1, 99): 1, (3, 30): 2})
        q = right_outer_join(L, R, ON, SCHEMA, PAD)
        out = dict(run_query(q, interp).items())
        assert out == {
            ((1, 10), (1, 99)): 1,
            (PAD, (3, 30)): 2,
        }

    @pytest.mark.parametrize("seed", range(4))
    def test_mirror_of_left(self, seed):
        # ROJ(L, R) re-flipped equals LOJ(R, L) with the mirrored predicate.
        interp = _interp(seed)
        mirrored_on = ast.PredEq(
            ast.P2E(ast.path(ast.LEFT, ast.LEFT), INT),
            ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT))
        roj = run_query(right_outer_join(L, R, ON, SCHEMA, PAD), interp)
        swapped = Interpretation()
        swapped.relations["L"] = interp.relations["Rt"]
        swapped.relations["Rt"] = interp.relations["L"]
        loj = run_query(left_outer_join(L, R, mirrored_on, SCHEMA, PAD),
                        swapped)
        flipped = {(r, l): m for (l, r), m in loj.items()}
        assert dict(roj.items()) == flipped
