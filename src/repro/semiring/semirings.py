"""Commutative semirings used to interpret HoTTSQL queries.

A K-relation (Green, Karvounarakis, Tannen, PODS 2007) annotates each tuple
with an element of a commutative semiring ``K = (K, +, ×, 0, 1)``.  The paper
observes (Sec. 2):

* ``Bool`` (the 2-element semiring) gives **set semantics**,
* ``Nat`` gives **bag semantics**,
* HoTTSQL's univalent types generalize these to possibly-infinite
  cardinalities — here the :class:`NatInfSemiring` over
  :class:`~repro.semiring.cardinal.Cardinal`.

Beyond the plain semiring operations, interpreting full HoTTSQL needs two
derived unary operations (paper Definition 3.1):

* ``squash(x) = ‖x‖`` — propositional truncation, used for ``DISTINCT``,
  ``OR``, and ``EXISTS``;
* ``negate(x) = (x → 0)`` — used for ``NOT`` and ``EXCEPT``.

Semirings where these operations exist and satisfy
``squash(0) = 0, squash(x) = 1 (x ≠ 0), negate(x) = squash(x) → 0``
are called *positive* semirings (no zero divisors and zero-sum-free); every
semiring in this module is positive.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Any, Generic, Iterable, TypeVar

from .cardinal import Cardinal, OMEGA, ONE, ZERO

K = TypeVar("K")


class Semiring(ABC, Generic[K]):
    """Abstract commutative, positive semiring.

    Concrete subclasses supply the carrier's constants and operations.
    Elements must be immutable and hashable.
    """

    #: Human-readable name used in reports and benchmark output.
    name: str = "semiring"

    @property
    @abstractmethod
    def zero(self) -> K:
        """The additive identity."""

    @property
    @abstractmethod
    def one(self) -> K:
        """The multiplicative identity."""

    @abstractmethod
    def add(self, a: K, b: K) -> K:
        """Semiring addition (bag union of multiplicities)."""

    @abstractmethod
    def mul(self, a: K, b: K) -> K:
        """Semiring multiplication (join of multiplicities)."""

    def is_zero(self, a: K) -> bool:
        """True iff ``a`` is the additive identity."""
        return a == self.zero

    def squash(self, a: K) -> K:
        """Propositional truncation ``‖a‖``; 0 ↦ 0 and everything else ↦ 1."""
        return self.zero if self.is_zero(a) else self.one

    def negate(self, a: K) -> K:
        """The operation ``a → 0``; 0 ↦ 1 and everything else ↦ 0."""
        return self.one if self.is_zero(a) else self.zero

    def sum(self, values: Iterable[K]) -> K:
        """Finite summation; the concrete image of the paper's Σ."""
        total = self.zero
        for v in values:
            total = self.add(total, v)
        return total

    def product(self, values: Iterable[K]) -> K:
        """Finite product."""
        total = self.one
        for v in values:
            total = self.mul(total, v)
        return total

    def from_bool(self, b: bool) -> K:
        """Indicator: the paper's denotation of a predicate's truth value."""
        return self.one if b else self.zero

    def from_int(self, n: int) -> K:
        """Embed a natural number by iterated addition (n ≥ 0)."""
        if n < 0:
            raise ValueError("semiring elements come from non-negative counts")
        total = self.zero
        for _ in range(n):
            total = self.add(total, self.one)
        return total

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class BoolSemiring(Semiring[bool]):
    """The Boolean semiring ``({0,1}, ∨, ∧)`` — set semantics."""

    name = "bool"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def mul(self, a: bool, b: bool) -> bool:
        return a and b

    def from_int(self, n: int) -> bool:
        if n < 0:
            raise ValueError("semiring elements come from non-negative counts")
        return n > 0


class NatSemiring(Semiring[int]):
    """The naturals ``(ℕ, +, ×)`` — classical bag semantics (finite K-relations)."""

    name = "nat"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

    def from_int(self, n: int) -> int:
        if n < 0:
            raise ValueError("semiring elements come from non-negative counts")
        return n


class NatInfSemiring(Semiring[Cardinal]):
    """Cardinals with omega — the paper's generalized multiplicities.

    This is the decategorified model of UniNomial: tuple multiplicities may
    be infinite, so projections of infinite relations are still defined
    (paper Sec. 2, "HoTTSQL Semantics").
    """

    name = "nat_inf"

    @property
    def zero(self) -> Cardinal:
        return ZERO

    @property
    def one(self) -> Cardinal:
        return ONE

    @property
    def omega(self) -> Cardinal:
        """The infinite multiplicity."""
        return OMEGA

    def add(self, a: Cardinal, b: Cardinal) -> Cardinal:
        return a + b

    def mul(self, a: Cardinal, b: Cardinal) -> Cardinal:
        return a * b

    def is_zero(self, a: Cardinal) -> bool:
        return a.is_zero

    def from_int(self, n: int) -> Cardinal:
        return Cardinal(n)


class TropicalSemiring(Semiring[Fraction]):
    """The tropical semiring ``(ℚ≥0 ∪ {∞}, min, +)``.

    Used in the provenance literature for *cost* interpretation of queries;
    included here to property-test that the evaluator is generic in K.  The
    additive identity is ∞ (represented by ``None`` would complicate hashing,
    so we use ``Fraction(-1)`` sentinel-free via a large bound — instead we
    represent ∞ as the distinguished value ``TropicalSemiring.INF``).
    """

    name = "tropical"

    #: Representation of tropical infinity (the additive identity).
    INF = Fraction(10**12)

    @property
    def zero(self) -> Fraction:
        return self.INF

    @property
    def one(self) -> Fraction:
        return Fraction(0)

    def add(self, a: Fraction, b: Fraction) -> Fraction:
        return min(a, b)

    def mul(self, a: Fraction, b: Fraction) -> Fraction:
        return min(a + b, self.INF)

    def from_int(self, n: int) -> Fraction:
        if n < 0:
            raise ValueError("semiring elements come from non-negative counts")
        return self.INF if n == 0 else Fraction(0)


#: Shared instances — the semirings are stateless, so these singletons are
#: what the rest of the library imports.
BOOL = BoolSemiring()
NAT = NatSemiring()
NAT_INF = NatInfSemiring()
TROPICAL = TropicalSemiring()

#: Semirings on which every rewrite rule is oracle-tested.
STANDARD_SEMIRINGS = (BOOL, NAT, NAT_INF)


def check_semiring_laws(sr: Semiring[Any], samples: Iterable[Any]) -> None:
    """Assert the commutative-semiring axioms on a finite sample set.

    Used by the test suite (including hypothesis-driven tests) to validate
    each semiring implementation.  Raises ``AssertionError`` on violation.
    """
    elems = list(samples)
    z, o = sr.zero, sr.one
    for a in elems:
        assert sr.add(a, z) == a, f"additive identity fails for {a!r}"
        assert sr.mul(a, o) == a, f"multiplicative identity fails for {a!r}"
        assert sr.mul(a, z) == z, f"annihilation fails for {a!r}"
        for b in elems:
            assert sr.add(a, b) == sr.add(b, a), "addition not commutative"
            assert sr.mul(a, b) == sr.mul(b, a), "multiplication not commutative"
            for c in elems:
                assert sr.add(sr.add(a, b), c) == sr.add(a, sr.add(b, c)), \
                    "addition not associative"
                assert sr.mul(sr.mul(a, b), c) == sr.mul(a, sr.mul(b, c)), \
                    "multiplication not associative"
                assert sr.mul(a, sr.add(b, c)) == sr.add(sr.mul(a, b), sr.mul(a, c)), \
                    "multiplication does not distribute over addition"
