"""Equality saturation: scheduler, budgets, extraction, provenance."""

import pytest

from repro.core import ast
from repro.core.equivalence import queries_equivalent
from repro.core.schema import INT, SVar
from repro.optimizer import (
    EGraph,
    SaturationBudget,
    TableStats,
    count_plans,
    extract_best,
    optimize,
    plan_cost,
    saturate,
)
from repro.sql import Catalog, compile_sql


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table("Emp", [("eid", INT), ("did", INT), ("age", INT)])
    cat.add_table("Dept", [("did", INT), ("budget", INT)])
    return cat


STATS = TableStats({"Emp": 16.0, "Dept": 4.0})

SEC513 = ("SELECT e.eid FROM Emp e, Dept d "
          "WHERE e.did = d.did AND d.budget > 100 AND e.age < 30")


def _saturated_egraph(query, **budget_kwargs):
    eg = EGraph()
    root = eg.add_term(query)
    eg.rebuild()
    stats = saturate(eg, budget=SaturationBudget(**budget_kwargs)
                     if budget_kwargs else None)
    return eg, root, stats


class TestScheduler:
    def test_reaches_fixpoint_on_small_query(self, catalog):
        q = compile_sql(SEC513, catalog).query
        _, _, stats = _saturated_egraph(q)
        assert stats.saturated
        assert stats.stop_reason == "saturated (fixpoint)"
        assert stats.iterations >= 2

    def test_node_budget_respected(self, catalog):
        q = compile_sql(SEC513, catalog).query
        eg, _, stats = _saturated_egraph(q, max_nodes=25)
        assert not stats.saturated
        assert "node budget" in stats.stop_reason
        # The budget meters *admitted* nodes; one in-flight rule firing
        # may finish, so allow its handful of nodes as slack.
        assert eg.nodes_added <= 25 + 5

    def test_iteration_budget_respected(self, catalog):
        q = compile_sql(SEC513, catalog).query
        _, _, stats = _saturated_egraph(q, max_iterations=1)
        assert stats.iterations == 1
        assert "iteration budget" in stats.stop_reason

    def test_rules_fire(self, catalog):
        q = compile_sql(SEC513, catalog).query
        _, _, stats = _saturated_egraph(q)
        assert stats.rules_fired.get("sel_split", 0) > 0
        assert stats.rules_fired.get("sel_push", 0) > 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="budgets must be positive"):
            SaturationBudget(max_iterations=0)


class TestSoundness:
    def test_every_class_member_is_equivalent(self, catalog):
        # The heart of the certification story: all members of an
        # e-class (including across rule unions + congruence) denote the
        # same relation.  Check the root class exhaustively on a small
        # workload by extracting each member as a concrete plan.
        q = compile_sql(
            "SELECT eid FROM Emp WHERE age < 30 AND did = 2",
            catalog).query
        eg, root, _ = _saturated_egraph(q)
        res = extract_best(eg, root, STATS)
        assert queries_equivalent(q, res.plan)

    @pytest.mark.parametrize("sql", [
        SEC513,
        "SELECT eid FROM Emp WHERE eid = 1 AND eid = 1",
        "SELECT u.eid FROM (SELECT eid FROM Emp UNION ALL "
        "SELECT eid FROM Emp) AS u WHERE u.eid = 1",
        "SELECT DISTINCT e.did FROM Emp e WHERE e.age < 30 AND e.eid > 2",
    ])
    def test_extracted_plan_is_equivalent(self, catalog, sql):
        q = compile_sql(sql, catalog).query
        eg, root, _ = _saturated_egraph(q)
        res = extract_best(eg, root, STATS)
        assert queries_equivalent(q, res.plan)


class TestExtraction:
    def test_extracted_cost_is_tree_cost(self, catalog):
        q = compile_sql(SEC513, catalog).query
        eg, root, _ = _saturated_egraph(q)
        res = extract_best(eg, root, STATS)
        assert res.estimate.cost == plan_cost(res.plan, STATS)

    def test_extraction_never_worse_than_original(self, catalog):
        q = compile_sql(SEC513, catalog).query
        eg, root, _ = _saturated_egraph(q)
        res = extract_best(eg, root, STATS)
        assert res.estimate.cost <= plan_cost(q, STATS)

    def test_matches_bfs_best_on_classic_workload(self, catalog):
        q = compile_sql(SEC513, catalog).query
        bfs = optimize(q, STATS, max_plans=400, certify=False,
                       strategy="bfs")
        sat = optimize(q, STATS, max_plans=400, certify=False,
                       strategy="saturation")
        assert sat.best_cost <= bfs.best_cost

    def test_duplicate_filter_stack_beats_greedy(self, catalog):
        # σ_b(A ∪ B) with a duplicated conjunct: the model-optimal plan
        # filters *below* the union — a choice a per-class greedy
        # extractor misses because the parent's cost depends on the
        # child's cardinality, not only its cost.  The Pareto extractor
        # must find a plan at least as cheap as BFS's.
        q = compile_sql(
            "SELECT u.eid FROM (SELECT eid FROM Emp UNION ALL "
            "SELECT eid FROM Emp) AS u WHERE u.eid = 1 AND u.eid = 1",
            catalog).query
        bfs = optimize(q, STATS, max_plans=400, certify=False,
                       strategy="bfs")
        sat = optimize(q, STATS, max_plans=400, certify=False,
                       strategy="saturation")
        assert sat.best_cost <= bfs.best_cost


class TestDeepChains:
    # A pushdown → dedup → pushdown sequence: under a tight shared
    # budget, breadth-first enumeration drowns in shallow variants while
    # saturation's dedup'd e-classes reach the deep plan.
    DEEP = ("SELECT e.eid FROM Emp e, Dept d WHERE e.did = d.did AND "
            "d.budget > 100 AND e.age < 30 AND e.eid > 2 AND e.eid > 2")

    def test_saturation_finds_cheaper_plan_at_equal_budget(self, catalog):
        q = compile_sql(self.DEEP, catalog).query
        budget = 120
        bfs = optimize(q, STATS, max_plans=budget, certify=False,
                       strategy="bfs")
        sat = optimize(q, STATS, max_plans=budget, certify=False,
                       strategy="saturation")
        assert sat.best_cost < bfs.best_cost
        assert queries_equivalent(q, sat.best_plan)

    def test_deep_chain_in_rule_provenance(self, catalog):
        q = compile_sql(self.DEEP, catalog).query
        sat = optimize(q, STATS, max_plans=400, certify=False,
                       strategy="saturation")
        assert len(sat.applied_rules) >= 3
        assert any(r.startswith("sel_push") for r in sat.applied_rules)

    def test_explores_more_distinct_plans_than_bfs(self, catalog):
        q = compile_sql(self.DEEP, catalog).query
        budget = 120
        bfs = optimize(q, STATS, max_plans=budget, certify=False,
                       strategy="bfs")
        sat = optimize(q, STATS, max_plans=budget, certify=False,
                       strategy="saturation")
        assert sat.plans_explored >= 2 * bfs.plans_explored


class TestPlanCounting:
    def test_single_plan(self):
        eg = EGraph()
        root = eg.add_term(ast.Table("R", SVar("s")))
        eg.rebuild()
        assert count_plans(eg, root) == 1

    def test_counts_match_bfs_reachable_set_shape(self, catalog):
        # On an acyclic saturated e-graph the count is exact and at
        # least the number of distinct plans BFS can ever enumerate
        # *modulo* merged duplicates (the e-graph merge rule dedups
        # conjunctions at creation, BFS materializes the bloated twin).
        q = compile_sql(SEC513, catalog).query
        eg, root, stats = _saturated_egraph(q)
        assert stats.saturated
        assert count_plans(eg, root) >= 30

    def test_cyclic_class_clamps(self, catalog):
        q = compile_sql(
            "SELECT eid FROM Emp WHERE eid = 1 AND eid = 1",
            catalog).query
        eg, root, _ = _saturated_egraph(q)
        # σ_b ∘ σ_b loops make the plan space infinite; the count clamps.
        assert count_plans(eg, root, limit=1000) == 1000


class TestPlannerIntegration:
    def test_default_strategy_is_saturation(self, catalog):
        q = compile_sql(SEC513, catalog).query
        result = optimize(q, STATS, certify=False)
        assert result.strategy == "saturation"
        assert result.saturation is not None
        assert result.saturated

    def test_bfs_fallback_unchanged_contract(self, catalog):
        q = compile_sql(SEC513, catalog).query
        result = optimize(q, STATS, certify=False, strategy="bfs")
        assert result.strategy == "bfs"
        assert result.saturation is None
        assert result.improved

    def test_unknown_strategy_rejected(self, catalog):
        q = compile_sql(SEC513, catalog).query
        with pytest.raises(ValueError, match="unknown strategy"):
            optimize(q, STATS, strategy="dfs")

    def test_certification_through_pipeline(self, catalog):
        q = compile_sql(SEC513, catalog).query
        result = optimize(q, STATS)
        assert result.certified is True
        assert result.improved


class TestParallelMatching:
    """``workers=N`` fans match analysis over a pool; results must be
    bit-identical to the serial run (apply stays serial)."""

    def test_parallel_parity_with_serial(self, catalog):
        query = compile_sql(SEC513, catalog).query
        outcomes = []
        # Parallel first: the pool workers (not a leftover serial stash)
        # must produce the features the apply phase consumes.
        for workers in (2, None):
            eg = EGraph()
            eg.add_term(query)
            eg.rebuild()
            stats = saturate(
                eg, budget=SaturationBudget(max_iterations=8,
                                            max_nodes=150),
                workers=workers)
            outcomes.append((stats.nodes, stats.unions, stats.saturated,
                             tuple(sorted(stats.rules_fired.items()))))
        assert outcomes[0] == outcomes[1]

    def test_workers_one_stays_serial(self, catalog):
        query = compile_sql(SEC513, catalog).query
        eg = EGraph()
        eg.add_term(query)
        eg.rebuild()
        stats = saturate(eg, workers=1)  # no pool spun up
        assert stats.iterations >= 1

    def test_optimize_accepts_workers(self, catalog):
        query = compile_sql(SEC513, catalog).query
        serial = optimize(query, STATS, certify=False)
        parallel = optimize(query, STATS, certify=False, workers=2)
        assert parallel.best_plan is serial.best_plan
        assert parallel.best_cost == serial.best_cost
