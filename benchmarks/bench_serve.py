#!/usr/bin/env python
"""Serve-layer throughput: cold vs warm verdicts/sec, concurrency, dedup.

Four measurements against a real ``ReproServer`` over loopback TCP:

* **cold** — N distinct prover-heavy questions on a fresh daemon: every
  request runs the full pipeline (parse → normalize → prove) and writes
  through to the shard store.
* **warm** — the same questions again: answered from the daemon's layered
  cache (compiled-query memo + hot LRU + shard store).  The PR's gate:
  warm throughput must be ≥ 10× cold in full mode.
* **concurrent** — C clients (one thread + connection each) hammer the
  warm set; measures aggregate verdicts/sec under connection concurrency.
* **dedup** — two clients fire the *same cold* question simultaneously;
  reports the leader/follower split and the pipeline-run count (must
  be exactly one).

Plus **restart-warm**: a second daemon on the same ``--store-dir``
serves the corpus from the shard store without re-proving.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py          # full
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke  # CI sweep
"""

import argparse
import sys
import tempfile
import threading
import time

#: Full-mode gate: warm verdicts/sec over cold verdicts/sec.
WARM_SPEEDUP_TARGET = 10.0


def _kjoin(k, tag, reverse=False):
    """A k-way self-join reordering pair member, made distinct by a
    selection constant so every ``tag`` is a fresh question."""
    names = [f"x{j}" for j in range(k)]
    conds = [f"{names[j]}.a = {names[j + 1]}.b" for j in range(k - 1)]
    if reverse:
        conds = conds[::-1]
    return ("SELECT DISTINCT x0.a FROM "
            + ", ".join(f"R AS {n}" for n in names)
            + " WHERE " + " AND ".join(conds) + f" AND x0.b = {tag}")


def corpus(n, k=5):
    """N distinct join-commutativity questions (prover-stage cold)."""
    return [(_kjoin(k, i), _kjoin(k, i, reverse=True)) for i in range(n)]


def _drain(client, pairs, tables):
    proved = 0
    for sql1, sql2 in pairs:
        verdict = client.check(sql1, sql2, tables=tables)
        proved += verdict.proved
    return proved


def run(smoke=False):
    from repro.serve.client import ServeClient
    from repro.serve.server import ReproServer

    tables = ["R(a:int,b:int)"]
    n = 4 if smoke else 12
    clients = 2 if smoke else 4
    warm_rounds = 1 if smoke else 3
    pairs = corpus(n)
    result = {"pairs": n, "clients": clients}

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as store_dir:
        server = ReproServer(port=0, tables=tables, workers=4,
                             store_dir=store_dir).start()
        try:
            with ServeClient(server.address) as cli:
                started = time.perf_counter()
                assert _drain(cli, pairs, tables) == n
                cold_wall = time.perf_counter() - started

                started = time.perf_counter()
                for _ in range(warm_rounds):
                    assert _drain(cli, pairs, tables) == n
                warm_wall = (time.perf_counter() - started) / warm_rounds

            # Aggregate throughput with C concurrent clients on the
            # warm set.
            barrier = threading.Barrier(clients)
            walls = [0.0] * clients

            def hammer(slot):
                with ServeClient(server.address) as c:
                    barrier.wait()
                    t0 = time.perf_counter()
                    assert _drain(c, pairs, tables) == n
                    walls[slot] = time.perf_counter() - t0

            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            concurrent_wall = max(walls)

            # In-flight dedup: two clients, one fresh question, fired
            # together — exactly one pipeline run.  The window is the
            # leader's ~10 ms pipeline run; retry with a fresh question
            # if the scheduler ever delays one racer past it.
            for attempt in range(3):
                before = server._op_stats({})["server"]
                fresh = (_kjoin(5, 9001 + attempt),
                         _kjoin(5, 9001 + attempt, reverse=True))
                roles = []
                gate = threading.Barrier(2)

                def race():
                    with ServeClient(server.address) as c:
                        gate.wait()
                        detail = c.check_detail(fresh[0], fresh[1],
                                                tables=tables)
                        roles.append(detail["dedup"])

                racers = [threading.Thread(target=race) for _ in range(2)]
                for t in racers:
                    t.start()
                for t in racers:
                    t.join()
                after = server._op_stats({})["server"]
                result["dedup"] = {
                    "roles": sorted(roles),
                    "pipeline_runs": after["pipeline_runs_total"]
                    - before["pipeline_runs_total"],
                    "followers": after["dedup_followers_total"]
                    - before["dedup_followers_total"],
                    "attempts": attempt + 1,
                }
                if result["dedup"]["roles"] == ["follower", "leader"]:
                    break
        finally:
            server.shutdown()

        # Restart-warm: a second daemon on the same store dir answers
        # the whole corpus from the shard store, no re-proving.
        second = ReproServer(port=0, tables=tables, workers=4,
                             store_dir=store_dir).start()
        try:
            with ServeClient(second.address) as cli:
                started = time.perf_counter()
                cached = 0
                for sql1, sql2 in pairs:
                    verdict = cli.check(sql1, sql2, tables=tables)
                    assert verdict.proved
                    cached += verdict.cached
                restart_wall = time.perf_counter() - started
        finally:
            second.shutdown()

    result.update({
        "cold_wall_seconds": cold_wall,
        "warm_wall_seconds": warm_wall,
        "cold_verdicts_per_second": n / cold_wall,
        "warm_verdicts_per_second": n / warm_wall,
        "warm_speedup": cold_wall / warm_wall if warm_wall else float("inf"),
        "concurrent_wall_seconds": concurrent_wall,
        "concurrent_verdicts_per_second":
            (n * clients) / concurrent_wall if concurrent_wall else 0.0,
        "restart_wall_seconds": restart_wall,
        "restart_cached": cached,
        "wall_seconds": cold_wall + warm_wall + concurrent_wall
        + restart_wall,
    })
    return result


def check(result, smoke):
    """Gate failures for run_all.py (full mode only)."""
    failures = []
    dedup = result["dedup"]
    if dedup["pipeline_runs"] != 1 or dedup["roles"] != \
            ["follower", "leader"]:
        failures.append(
            f"serve: concurrent identical cold checks ran the pipeline "
            f"{dedup['pipeline_runs']} time(s) (roles {dedup['roles']}); "
            f"expected exactly one leader + one follower")
    if result["restart_cached"] != result["pairs"]:
        failures.append(
            f"serve: only {result['restart_cached']}/{result['pairs']} "
            f"verdicts served from the shard store after restart")
    if not smoke and result["warm_speedup"] < WARM_SPEEDUP_TARGET:
        failures.append(
            f"serve: warm throughput {result['warm_speedup']:.1f}x cold, "
            f"below the {WARM_SPEEDUP_TARGET:.0f}x target")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus, no throughput gate (CI sweep)")
    args = parser.parse_args(argv)

    result = run(smoke=args.smoke)
    print(f"serve throughput ({result['pairs']} question(s), "
          f"{result['clients']} concurrent client(s))")
    print(f"  cold        {result['cold_verdicts_per_second']:8.1f} "
          f"verdicts/s  ({result['cold_wall_seconds'] * 1e3:.1f} ms)")
    print(f"  warm        {result['warm_verdicts_per_second']:8.1f} "
          f"verdicts/s  ({result['warm_speedup']:.1f}x cold)")
    print(f"  concurrent  "
          f"{result['concurrent_verdicts_per_second']:8.1f} verdicts/s")
    print(f"  restart     {result['restart_cached']}/{result['pairs']} "
          f"from the shard store "
          f"({result['restart_wall_seconds'] * 1e3:.1f} ms)")
    print(f"  dedup       {result['dedup']['pipeline_runs']} pipeline "
          f"run(s) for 2 concurrent identical questions "
          f"(roles: {', '.join(result['dedup']['roles'])})")
    failures = check(result, args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
