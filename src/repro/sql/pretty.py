"""Pretty-printers for HoTTSQL syntax and UniNomial denotations.

Renders core ASTs in the paper's notation (Figure 5 keywords, path
selectors, CASTPRED/CASTEXPR) and denotations in the λ-and-Σ style of the
paper's worked examples (Figures 1 and 2), which is what the overview
benchmarks print.
"""

from __future__ import annotations

from ..core import ast
from ..core.denote import Denotation
from .resolve import ARITHMETIC_FUNCS


def query_to_str(query: ast.Query) -> str:
    """Render a core query in HoTTSQL concrete syntax."""
    if isinstance(query, ast.Table):
        return query.name
    if isinstance(query, ast.Select):
        return (f"SELECT {projection_to_str(query.projection)} "
                f"{query_to_str(query.query)}")
    if isinstance(query, ast.Product):
        return f"FROM {query_to_str(query.left)}, {query_to_str(query.right)}"
    if isinstance(query, ast.Where):
        return (f"({query_to_str(query.query)} "
                f"WHERE {predicate_to_str(query.predicate)})")
    if isinstance(query, ast.UnionAll):
        return (f"({query_to_str(query.left)} UNION ALL "
                f"{query_to_str(query.right)})")
    if isinstance(query, ast.Except):
        return (f"({query_to_str(query.left)} EXCEPT "
                f"{query_to_str(query.right)})")
    if isinstance(query, ast.Distinct):
        return f"DISTINCT {query_to_str(query.query)}"
    raise TypeError(f"not a query: {query!r}")


def predicate_to_str(pred: ast.Predicate) -> str:
    """Render a core predicate."""
    if isinstance(pred, ast.PredEq):
        return (f"{expression_to_str(pred.left)} = "
                f"{expression_to_str(pred.right)}")
    if isinstance(pred, ast.PredAnd):
        return (f"({predicate_to_str(pred.left)} AND "
                f"{predicate_to_str(pred.right)})")
    if isinstance(pred, ast.PredOr):
        return (f"({predicate_to_str(pred.left)} OR "
                f"{predicate_to_str(pred.right)})")
    if isinstance(pred, ast.PredNot):
        return f"NOT {predicate_to_str(pred.operand)}"
    if isinstance(pred, ast.PredTrue):
        return "TRUE"
    if isinstance(pred, ast.PredFalse):
        return "FALSE"
    if isinstance(pred, ast.Exists):
        return f"EXISTS ({query_to_str(pred.query)})"
    if isinstance(pred, ast.CastPred):
        return (f"CASTPRED {projection_to_str(pred.projection)} "
                f"{predicate_to_str(pred.predicate)}")
    if isinstance(pred, ast.PredVar):
        return pred.name
    if isinstance(pred, ast.PredFunc):
        args = ", ".join(expression_to_str(a) for a in pred.args)
        return f"{pred.name}({args})"
    raise TypeError(f"not a predicate: {pred!r}")


#: Function symbols the SQL front end uses for infix arithmetic.
_INFIX_FUNCS = ARITHMETIC_FUNCS


def expression_to_str(expr: ast.Expression) -> str:
    """Render a core expression."""
    if isinstance(expr, ast.P2E):
        return f"P2E {projection_to_str(expr.projection)}"
    if isinstance(expr, ast.Const):
        return repr(expr.value)
    if isinstance(expr, ast.Func):
        if expr.name in _INFIX_FUNCS and len(expr.args) == 2:
            return (f"({expression_to_str(expr.args[0])} "
                    f"{_INFIX_FUNCS[expr.name]} "
                    f"{expression_to_str(expr.args[1])})")
        args = ", ".join(expression_to_str(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.Agg):
        return f"{expr.name}({query_to_str(expr.query)})"
    if isinstance(expr, ast.CastExpr):
        return (f"CASTEXPR {projection_to_str(expr.projection)} "
                f"{expression_to_str(expr.expression)}")
    if isinstance(expr, ast.ExprVar):
        return expr.name
    raise TypeError(f"not an expression: {expr!r}")


def projection_to_str(proj: ast.Projection) -> str:
    """Render a core projection in path notation."""
    if isinstance(proj, ast.Star):
        return "*"
    if isinstance(proj, ast.LeftP):
        return "Left"
    if isinstance(proj, ast.RightP):
        return "Right"
    if isinstance(proj, ast.EmptyP):
        return "Empty"
    if isinstance(proj, ast.Compose):
        return (f"{projection_to_str(proj.first)}."
                f"{projection_to_str(proj.second)}")
    if isinstance(proj, ast.Duplicate):
        return (f"({projection_to_str(proj.left)}, "
                f"{projection_to_str(proj.right)})")
    if isinstance(proj, ast.E2P):
        return f"E2P {expression_to_str(proj.expression)}"
    if isinstance(proj, ast.PVar):
        return proj.name
    raise TypeError(f"not a projection: {proj!r}")


def denotation_to_str(denotation: Denotation) -> str:
    """Render a closed denotation like the paper's Figure 1/2 displays."""
    return (f"λ {denotation.g.name} {denotation.t.name}. "
            f"{denotation.body}")
