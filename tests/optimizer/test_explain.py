"""EXPLAIN rendering of plans."""

import pytest

from repro.core import ast
from repro.core.schema import INT
from repro.optimizer import TableStats, explain, optimize
from repro.sql import Catalog, compile_sql


@pytest.fixture
def setup():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    cat.add_table("S", [("a", INT), ("c", INT)])
    return cat, TableStats({"R": 100.0, "S": 10.0})


class TestExplain:
    def test_scan(self, setup):
        cat, stats = setup
        text = explain(compile_sql("SELECT * FROM R", cat).query, stats)
        assert "Scan R" in text
        assert "rows≈100.0" in text

    def test_join_tree_structure(self, setup):
        cat, stats = setup
        q = compile_sql(
            "SELECT x.a FROM R x, S y WHERE x.a = y.a", cat).query
        text = explain(q, stats)
        lines = text.splitlines()
        assert lines[0].startswith("Project")
        assert any("Filter" in line for line in lines)
        assert any("CrossJoin" in line for line in lines)
        assert sum("Scan" in line for line in lines) == 2
        # Indentation grows with depth.
        assert lines[1].startswith("  ")

    def test_all_operators_render(self, setup):
        cat, stats = setup
        q = compile_sql(
            "SELECT DISTINCT a FROM R EXCEPT "
            "(SELECT a FROM R UNION ALL SELECT a FROM S)", cat).query
        text = explain(q, stats)
        for op in ("Except", "Distinct", "UnionAll", "Scan"):
            assert op in text, op

    def test_optimized_plan_cheaper_in_explain(self, setup):
        cat, stats = setup
        q = compile_sql(
            "SELECT x.a FROM R x, S y WHERE x.a = y.a AND y.c = 1",
            cat).query
        result = optimize(q, stats, max_plans=200, certify=False)
        before = explain(q, stats)
        after = explain(result.best_plan, stats)
        # The pushed filter sits below the join in the optimized plan.
        assert result.best_cost < result.original_cost
        assert before != after


class TestExplainTotality:
    """Regression: explain() must be total over ast.Query — including the
    arithmetic / HAVING shapes of the generalized SQL front end, whose
    desugarings embed whole subqueries inside projections and predicates.
    """

    PR4_SHAPES = (
        "SELECT a, SUM(b) FROM R GROUP BY a",
        "SELECT a FROM R GROUP BY a HAVING SUM(b) > 10",
        "SELECT COUNT(b) FROM R",
        "SELECT a + b * 2 FROM R",
        "SELECT a FROM R WHERE a + b = 3",
        "SELECT g.a FROM (SELECT a, SUM(b) AS s FROM R GROUP BY a) g "
        "WHERE g.s = 3",
        "SELECT a, SUM(b) FROM R GROUP BY a HAVING COUNT(b) > 1",
        "SELECT SUM(a + b) FROM R",
    )

    @pytest.mark.parametrize("sql", PR4_SHAPES)
    def test_pr4_shapes_render(self, setup, sql):
        cat, stats = setup
        text = explain(compile_sql(sql, cat).query, stats)
        assert text
        assert "rows≈" in text

    @pytest.mark.parametrize("sql", PR4_SHAPES)
    def test_pr4_shapes_render_after_optimize(self, setup, sql):
        cat, stats = setup
        result = optimize(compile_sql(sql, cat).query, stats,
                          max_plans=60, certify=False)
        assert explain(result.best_plan, stats)

    def test_aggregate_subquery_gets_its_own_subtree(self, setup):
        cat, stats = setup
        q = compile_sql("SELECT a FROM R GROUP BY a HAVING SUM(b) > 10",
                        cat).query
        text = explain(q, stats)
        assert "Aggregate SUM" in text
        # The aggregate's operand renders as a costed sub-plan.
        lines = text.splitlines()
        agg_at = next(i for i, line in enumerate(lines)
                      if "Aggregate SUM" in line)
        assert "Scan R" in "\n".join(lines[agg_at:])

    def test_long_labels_are_clipped(self, setup):
        cat, stats = setup
        q = compile_sql("SELECT a, SUM(b) FROM R GROUP BY a", cat).query
        for line in explain(q, stats).splitlines():
            label = line.split("  [rows")[0]
            assert len(label.strip()) <= 100

    def test_unknown_query_node_renders_opaque(self, setup):
        _, stats = setup

        class FutureOperator(ast.Query):
            """A query constructor explain() has never heard of."""

        text = explain(FutureOperator(), stats)
        assert "Opaque FutureOperator" in text
        assert "rows≈?" in text

    def test_explain_result_renders_chain_and_tree(self, setup):
        cat, stats = setup
        from repro.optimizer import explain_result
        q = compile_sql(
            "SELECT x.a FROM R x, S y WHERE x.a = y.a AND y.c = 1",
            cat).query
        result = optimize(q, stats, max_plans=200, certify=False)
        text = explain_result(result, stats)
        assert "strategy           : saturation" in text
        assert "rewrite chain" in text
        assert "sel_push" in text
        assert "Scan R" in text

    def test_explain_result_no_rewrite(self, setup):
        cat, stats = setup
        from repro.optimizer import explain_result
        result = optimize(compile_sql("SELECT a FROM R", cat).query,
                          stats, certify=False)
        assert "(none — original plan kept)" in explain_result(result,
                                                               stats)

    def test_explain_result_marks_clamped_plan_count(self, setup):
        # A duplicated conjunct creates σ_b ∘ σ_b cycles, so the e-graph
        # represents unboundedly many plans; the count clamps and must
        # render as a lower bound, not an exact figure.
        cat, stats = setup
        from repro.optimizer import PLAN_COUNT_LIMIT, explain_result
        q = compile_sql("SELECT a FROM R WHERE a = 1 AND a = 1",
                        cat).query
        result = optimize(q, stats, certify=False)
        assert result.plans_explored == PLAN_COUNT_LIMIT
        assert f"≥{PLAN_COUNT_LIMIT} distinct plans" in \
            explain_result(result, stats)
