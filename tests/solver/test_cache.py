"""Content-addressed proof cache: fingerprints, LRU, persistence."""

import pytest

from repro.core.denote import denote_closed
from repro.core.equivalence import align_denotations
from repro.core.normalize import normalize
from repro.core.schema import EMPTY, INT
from repro.solver import (
    Pipeline,
    ProofCache,
    Status,
    Verdict,
    nsum_fingerprint,
    syntactic_alias,
)
from repro.sql import Catalog, compile_sql


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    return cat


def _normal_pair(q1, q2):
    d1 = denote_closed(q1, EMPTY)
    d2 = denote_closed(q2, EMPTY)
    lhs, rhs = align_denotations(d1, d2)
    return normalize(lhs), normalize(rhs), {d1.g: "@g", d1.t: "@t"}


class TestFingerprint:
    def test_symmetric(self, catalog):
        q1 = compile_sql("SELECT a FROM R", catalog).query
        q2 = compile_sql("SELECT b FROM R", catalog).query
        n1, n2, env = _normal_pair(q1, q2)
        assert nsum_fingerprint(n1, n2, free_env=env) == \
            nsum_fingerprint(n2, n1, free_env=env)

    def test_stable_across_runs(self, catalog):
        # Fresh-variable counters advance between compilations; the
        # fingerprint must not notice.
        q1 = compile_sql("SELECT a FROM R", catalog).query
        q2 = compile_sql("SELECT b FROM R", catalog).query
        pipeline = Pipeline()
        first = pipeline.check(q1, q2).fingerprint
        pipeline.cache.clear()
        second = pipeline.check(q1, q2).fingerprint
        assert first == second

    def test_alpha_equivalent_queries_share_fingerprint(self, catalog):
        # Different alias names, same question.
        q1 = compile_sql(
            "SELECT x.a FROM R AS x WHERE x.a = 1", catalog).query
        q2 = compile_sql(
            "SELECT y.a FROM R AS y WHERE y.a = 1", catalog).query
        pipeline = Pipeline()
        v1 = pipeline.check(q1, q1)
        v2 = pipeline.check(q2, q2)
        assert v1.fingerprint == v2.fingerprint

    def test_alias_is_symmetric(self, catalog):
        q1 = compile_sql("SELECT a FROM R", catalog).query
        q2 = compile_sql("SELECT b FROM R", catalog).query
        assert syntactic_alias(q1, q2) == syntactic_alias(q2, q1)


class TestLRU:
    def _verdict(self, tag):
        return Verdict(status=Status.PROVED, stage="prover",
                       fingerprint=tag)

    def test_eviction_order(self):
        cache = ProofCache(max_size=2)
        cache.put("a", self._verdict("a"))
        cache.put("b", self._verdict("b"))
        assert cache.get("a") is not None  # refresh a
        cache.put("c", self._verdict("c"))  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_hit_rate_accounting(self):
        cache = ProofCache(max_size=8)
        cache.put("a", self._verdict("a"))
        assert cache.get("a") is not None
        assert cache.get("missing") is None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_cached_copies_are_marked(self):
        cache = ProofCache()
        cache.put("a", self._verdict("a"))
        hit = cache.get("a")
        assert hit.cached is True

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            ProofCache(max_size=0)


class TestPersistence:
    def test_roundtrip(self, tmp_path, catalog):
        path = str(tmp_path / "cache.json")
        q1 = compile_sql("SELECT DISTINCT a FROM R", catalog).query
        q2 = compile_sql(
            "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a",
            catalog).query
        pipeline = Pipeline(cache_path=path)
        cold = pipeline.check(q1, q2)
        assert cold.proved and not cold.cached
        pipeline.cache.save()

        fresh = Pipeline(cache_path=path)
        warm = fresh.check(q1, q2)
        assert warm.proved and warm.cached

    def test_counterexample_survives_roundtrip(self, tmp_path, catalog):
        path = str(tmp_path / "cache.json")
        q1 = compile_sql("SELECT a FROM R", catalog).query
        q2 = compile_sql("SELECT b FROM R", catalog).query
        pipeline = Pipeline(cache_path=path)
        cold = pipeline.check(q1, q2)
        assert cold.disproved and cold.counterexample is not None
        pipeline.cache.save()

        warm = Pipeline(cache_path=path).check(q1, q2)
        assert warm.disproved
        assert warm.counterexample == cold.counterexample

    def test_save_without_path_is_an_error(self):
        with pytest.raises(ValueError):
            ProofCache().save()


def _verdict(tag):
    return Verdict(status=Status.PROVED, stage="prover", fingerprint=tag)


class TestLoadMerge:
    """Loading a persisted cache into a warm one must not evict the warm
    working set or perturb the hit-rate counters."""

    def test_load_then_overflow_keeps_warm_entries(self, tmp_path):
        path = str(tmp_path / "cache.json")
        donor = ProofCache(max_size=8)
        for tag in ("d1", "d2", "d3"):
            donor.put(tag, _verdict(tag))
        donor.save(path)

        warm = ProofCache(max_size=4)
        warm.put("w1", _verdict("w1"))
        warm.put("w2", _verdict("w2"))
        warm.load(path)
        # 5 candidates into 4 slots: the overflow must shed loaded disk
        # history, never the in-memory working set.
        assert len(warm) == 4
        assert "w1" in warm and "w2" in warm
        assert "d1" not in warm  # oldest disk entry evicted

    def test_load_does_not_touch_hit_rate(self, tmp_path):
        path = str(tmp_path / "cache.json")
        donor = ProofCache(max_size=8)
        donor.put("d1", _verdict("d1"))
        donor.save(path)

        warm = ProofCache(max_size=8)
        warm.put("w1", _verdict("w1"))
        assert warm.get("w1") is not None
        assert warm.get("absent") is None
        hits, misses = warm.hits, warm.misses
        warm.load(path)
        assert (warm.hits, warm.misses) == (hits, misses)
        assert warm.hit_rate == 0.5

    def test_memory_entry_wins_over_disk_twin(self, tmp_path):
        path = str(tmp_path / "cache.json")
        donor = ProofCache(max_size=8)
        stale = Verdict(status=Status.UNKNOWN, stage="prover",
                        fingerprint="shared")
        donor.put("shared", stale)
        donor.save(path)

        warm = ProofCache(max_size=8)
        warm.put("shared", _verdict("shared"))
        warm.load(path)
        assert warm.get("shared").status is Status.PROVED

    def test_loaded_entries_rank_colder_than_warm_ones(self, tmp_path):
        path = str(tmp_path / "cache.json")
        donor = ProofCache(max_size=8)
        donor.put("d1", _verdict("d1"))
        donor.save(path)

        warm = ProofCache(max_size=2)
        warm.put("w1", _verdict("w1"))
        warm.load(path)
        warm.put("w2", _verdict("w2"))  # overflow: d1 must go, not w1
        assert "d1" not in warm
        assert "w1" in warm and "w2" in warm


class TestConcurrentSave:
    """Two caches saving to the same path must merge, not clobber."""

    def test_save_merges_with_disk(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = ProofCache(max_size=8)
        first.put("a", _verdict("a"))
        first.save(path)

        second = ProofCache(max_size=8)
        second.put("b", _verdict("b"))
        second.save(path)  # must not discard "a"

        merged = ProofCache(max_size=8, path=path)
        assert "a" in merged and "b" in merged

    def test_saver_wins_shared_fingerprint(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = ProofCache(max_size=8)
        first.put("shared", Verdict(status=Status.UNKNOWN, stage="prover",
                                    fingerprint="shared"))
        first.save(path)

        second = ProofCache(max_size=8)
        second.put("shared", _verdict("shared"))
        second.save(path)

        merged = ProofCache(max_size=8, path=path)
        assert merged.get("shared").status is Status.PROVED

    def test_merge_respects_max_size(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = ProofCache(max_size=4)
        for tag in ("a", "b", "c"):
            first.put(tag, _verdict(tag))
        first.save(path)

        second = ProofCache(max_size=4)
        for tag in ("x", "y", "z"):
            second.put(tag, _verdict(tag))
        second.save(path)
        # 6 candidates into 4 slots: the saver's own (warmest) entries
        # all survive; disk-only history fills the rest.
        merged = ProofCache(max_size=8, path=path)
        assert len(merged) == 4
        assert all(tag in merged for tag in ("x", "y", "z"))

    def test_concurrent_savers_union_survives(self, tmp_path):
        import multiprocessing

        path = str(tmp_path / "cache.json")
        ctx = multiprocessing.get_context("spawn")
        procs = [ctx.Process(target=_saver_proc, args=(path, i))
                 for i in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        merged = ProofCache(max_size=256, path=path)
        for i in range(4):
            for j in range(8):
                assert f"p{i}-{j}" in merged


def _saver_proc(path, seed):
    cache = ProofCache(max_size=256)
    for j in range(8):
        tag = f"p{seed}-{j}"
        cache.put(tag, Verdict(status=Status.PROVED, stage="prover",
                               fingerprint=tag))
        cache.save(path)
