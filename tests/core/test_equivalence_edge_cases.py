"""Equivalence-engine edge cases complementing the main suites."""


from repro.core import ast
from repro.core.equivalence import (
    FDConstraint,
    Hypotheses,
    KeyConstraint,
    check_uterm_equivalence,
    queries_equivalent,
    uterms_equivalent,
)
from repro.core.schema import INT, Leaf, Node, SVar
from repro.core.uninomial import (
    TApp,
    TVar,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UPred,
    URel,
    USquash,
    USum,
    fresh_var,
)

SR = SVar("sR")
T = TVar("t", SR)
R = URel("R", T)
S = URel("S", T)


class TestNegationReasoning:
    def test_neg_alpha_invariance(self):
        x = fresh_var(SR, "x")
        y = fresh_var(SR, "y")
        lhs = UMul(R, UNeg(USum(x, URel("S", x))))
        rhs = UMul(R, UNeg(USum(y, URel("S", y))))
        assert uterms_equivalent(lhs, rhs)

    def test_neg_strengthening(self):
        # R × ¬S × b  =  R × b × ¬(S × b): the guarded negation is
        # equivalent under the ambient predicate.
        b = UPred("b", (T,))
        lhs = UMul(UMul(R, UNeg(S)), b)
        rhs = UMul(UMul(R, b), UNeg(UMul(S, b)))
        assert uterms_equivalent(lhs, rhs)

    def test_x_and_not_x_is_empty(self):
        lhs = UMul(R, UNeg(R))
        from repro.core.uninomial import ZERO
        assert uterms_equivalent(lhs, ZERO)

    def test_neg_of_different_relations_not_confused(self):
        lhs = UMul(R, UNeg(S))
        rhs = UMul(R, UNeg(URel("T", T)))
        assert not uterms_equivalent(lhs, rhs)


class TestFDAndKeysTogether:
    HYPS = Hypotheses(
        keys=(KeyConstraint("R", "k", Leaf(INT)),),
        fds=(FDConstraint("R", "a", Leaf(INT), "b", Leaf(INT)),))

    def test_fd_via_key_composition(self):
        # With key k and two R-atoms whose k agree, ALL their attributes
        # agree (the tuples merge).
        x = TVar("x", SR)
        y = TVar("y", SR)
        k = lambda t: TApp("k", (t,), Leaf(INT))     # noqa: E731
        a = lambda t: TApp("a", (t,), Leaf(INT))     # noqa: E731
        base = UMul(URel("R", x), UMul(URel("R", y), UEq(k(x), k(y))))
        conclusion = UMul(base, UEq(a(x), a(y)))
        assert uterms_equivalent(base, conclusion, self.HYPS)

    def test_hypotheses_scoped_to_named_relation(self):
        # The key axiom must not fire on relation S.
        x = TVar("x", SR)
        y = TVar("y", SR)
        k = lambda t: TApp("k", (t,), Leaf(INT))     # noqa: E731
        base = UMul(URel("S", x), UMul(URel("S", y), UEq(k(x), k(y))))
        conclusion = UMul(base, UEq(x, y))
        assert not uterms_equivalent(base, conclusion, self.HYPS)


class TestMultiplicityCounting:
    def test_sum_multiplicity_is_respected(self):
        # Σx. R x  ≠  Σx. Σy. R x (the extra binder scales by |Tuple σ|).
        x = fresh_var(SR, "x")
        y = fresh_var(SR, "y")
        x2 = fresh_var(SR, "x")
        lhs = USum(x, URel("R", x))
        rhs = USum(x2, USum(y, URel("R", x2)))
        assert not uterms_equivalent(lhs, rhs)

    def test_add_of_three_matches_any_grouping(self):
        a, b, c = R, S, URel("T", T)
        lhs = UAdd(UAdd(a, b), c)
        rhs = UAdd(b, UAdd(c, a))
        assert uterms_equivalent(lhs, rhs)

    def test_squashed_vs_unsquashed_distinct(self):
        assert not uterms_equivalent(R, USquash(R))


class TestContextSchemas:
    def test_nonempty_outer_context(self):
        # Equivalence checking in a non-empty context: predicates see the
        # outer tuple, and the proofs still go through.
        outer = SVar("outer")
        R_t = ast.Table("R", SR)
        S_t = ast.Table("S", SR)
        b = ast.PredVar("b", Node(outer, SR))
        lhs = ast.Where(ast.UnionAll(R_t, S_t), b)
        rhs = ast.UnionAll(ast.Where(R_t, b), ast.Where(S_t, b))
        assert queries_equivalent(lhs, rhs, ctx_schema=outer)

    def test_constants_block_false_equivalences(self):
        R_t = ast.Table("R", SR)
        one = ast.Where(R_t, ast.PredEq(ast.Const(1, INT),
                                        ast.Const(1, INT)))
        two = ast.Where(R_t, ast.PredEq(ast.Const(1, INT),
                                        ast.Const(2, INT)))
        assert queries_equivalent(one, R_t)
        assert not queries_equivalent(two, R_t)
        assert queries_equivalent(two, ast.Where(R_t, ast.PredFalse()))


class TestStatsAndResults:
    def test_normal_forms_exposed(self):
        result = check_uterm_equivalence(UAdd(R, S), UAdd(S, R))
        assert result.equal
        assert len(result.lhs_normal.products) == 2
        assert len(result.rhs_normal.products) == 2

    def test_trace_has_narrative(self):
        result = check_uterm_equivalence(R, R)
        assert any("normalized" in line for line in result.stats.trace)
        assert any("matching" in line for line in result.stats.trace)
