"""Unified observability layer: tracing, metrics, and logging.

Dependency-free (standard library only) and import-cycle-free — nothing
in this package imports the rest of :mod:`repro`, so every layer from
the term kernel to the CLI can instrument itself:

* :mod:`repro.obs.trace` — hierarchical spans (context manager /
  decorator, thread-local stacks, monotonic clocks) with Chrome
  trace-event and indented-tree exporters.  The span tree is the source
  of truth for ``Verdict.timings``.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket histograms whose ``snapshot()`` /
  ``merge_snapshots()`` algebra lets the multiprocessing batch service
  aggregate worker metrics in the parent.
* :mod:`repro.obs.logs` — the ``repro``-rooted :mod:`logging` hierarchy
  (NullHandler by default; ``configure_logging`` for the CLI's
  ``--log-level``).

See the README's "Observability" section for the metric-name reference
and a ``--trace-out`` walkthrough.
"""

from .logs import ROOT_LOGGER_NAME, configure_logging, get_logger
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    diff_snapshots,
    empty_snapshot,
    gauge,
    histogram,
    merge_snapshots,
)
from .trace import (
    Span,
    TRACER,
    Tracer,
    current_span,
    span,
    trace_to_file,
    traced,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "ROOT_LOGGER_NAME",
    "Span",
    "TRACER",
    "Tracer",
    "configure_logging",
    "counter",
    "current_span",
    "diff_snapshots",
    "empty_snapshot",
    "gauge",
    "get_logger",
    "histogram",
    "merge_snapshots",
    "span",
    "trace_to_file",
    "traced",
]
