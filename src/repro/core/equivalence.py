"""The equivalence engine: deciding equality of UniNomial normal forms.

This is the reproduction of DOPCERT's lemma/tactic library (paper Sec. 5).
Given two normal forms (:class:`~repro.core.normalize.NSum`), the engine
decides equality using exactly the ingredients of the paper's proofs:

* **semiring matching** — clauses are compared modulo associativity and
  commutativity of ``+``/``×`` with a bound-variable bijection search,
* **congruence closure** — equalities inside a clause are saturated
  (Nelson–Oppen), including the Horn axioms induced by key and functional-
  dependency hypotheses (paper Sec. 4.2, used by the index rules of
  Sec. 5.1.4),
* **Lemma 5.3 absorption** — ``(T → P) ⟹ (T × P = T)``: any propositional
  factor entailed by the rest of its clause is dropped,
* **squash bi-implication** — equality of truncated types is proved by
  mutual implication, with existentials discharged by a backtracking
  instantiation search (the paper's Ltac backtracking, Sec. 5.2),
* **aggregate congruence** — ``agg`` terms are compared by recursively
  deciding bag-equivalence of their (context-rewritten) bodies, which is
  how the GROUP BY rule of Sec. 5.1.2 goes through.

The engine is *sound but incomplete* (query equivalence is undecidable —
paper Figure 9); for the conjunctive-query fragment the search is complete,
which is what :mod:`repro.core.conjunctive` exposes as the automated
decision procedure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ReproError, SchemaMismatchError
from .congruence import CongruenceClosure
from .normalize import (
    AEq,
    ANeg,
    APred,
    ARel,
    ASquash,
    Atom,
    NProduct,
    NSum,
    atom_alpha_key,
    atom_free_vars,
    atom_subst,
    normalize,
    nsums_alpha_equal,
    product_alpha_key,
)
from .schema import Empty, Node, Schema
from .uninomial import (
    Substitution,
    TAgg,
    TApp,
    TPair,
    TUnit,
    TVar,
    Term,
    UTerm,
    fresh_var,
    iter_subterms,
    subst_uterm,
    term_free_vars,
)

#: Maximum nesting depth for the entailment search.  Each level of squash
#: opening, aggregate congruence, or witness instantiation consumes one
#: unit; the deepest paper rule (semijoin through aggregation — a squash
#: inside an aggregate body inside a squash) needs eight.
MAX_DEPTH = 9


# ---------------------------------------------------------------------------
# Hypotheses: integrity constraints as Horn axioms (paper Sec. 4.2)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KeyConstraint:
    """``key k R``: the projection ``proj`` is a key of relation ``rel``.

    Semantically (paper Sec. 4.2) this makes R set-valued and makes any two
    R-tuples with equal keys *equal*.  Both consequences are used: the
    closure merges R-tuples with congruent keys, and duplicate R-atoms in a
    clause collapse.
    """

    rel: str
    proj: str
    proj_schema: Schema


@dataclass(frozen=True)
class FDConstraint:
    """``fd a b R``: attribute ``source`` determines ``target`` in ``rel``."""

    rel: str
    source: str
    source_schema: Schema
    target: str
    target_schema: Schema


@dataclass(frozen=True)
class Hypotheses:
    """The integrity-constraint context a rewrite rule assumes."""

    keys: Tuple[KeyConstraint, ...] = ()
    fds: Tuple[FDConstraint, ...] = ()

    def keyed_relations(self) -> frozenset:
        return frozenset(k.rel for k in self.keys)


NO_HYPOTHESES = Hypotheses()


# ---------------------------------------------------------------------------
# Instrumentation — the proof-effort metric behind Figure 8
# ---------------------------------------------------------------------------

class StepBudgetExceeded(ReproError):
    """The engine consumed more reasoning steps than its caller allowed.

    Raised from inside the search when :attr:`ProofStats.max_steps` is set;
    callers that impose a budget (the tiered verification pipeline) catch
    it and treat the check as inconclusive rather than letting the
    undecidable search run away.
    """


#: ProofStats fields that count toward ``total_steps``.
_STEP_COUNTERS = frozenset({
    "cc_builds", "hom_searches", "absorptions", "product_matches",
    "agg_comparisons",
})


@dataclass
class ProofStats:
    """Counters for the engine's reasoning steps.

    ``total_steps`` is the effort metric reported by the Figure 8
    benchmark; it plays the role of the paper's "lines of Coq proof".
    ``max_steps``, when set, turns the stats object into a budget: the
    increment that crosses the limit raises :class:`StepBudgetExceeded`.
    """

    cc_builds: int = 0
    hom_searches: int = 0
    absorptions: int = 0
    product_matches: int = 0
    agg_comparisons: int = 0
    #: interned-kernel counters (not reasoning steps): ``normalize`` memo
    #: hits/misses charged to this check and the live canonical node count
    #: at the time the check ran.
    normalize_hits: int = 0
    normalize_misses: int = 0
    interned_nodes: int = 0
    trace: List[str] = field(default_factory=list)
    max_steps: Optional[int] = None

    @property
    def total_steps(self) -> int:
        return (self.cc_builds + self.hom_searches + self.absorptions
                + self.product_matches + self.agg_comparisons)

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        # The max_steps guard only engages once __init__ has populated every
        # counter (getattr returns None for a half-initialized instance).
        if name in _STEP_COUNTERS \
                and getattr(self, "max_steps", None) is not None \
                and self.total_steps > self.max_steps:
            raise StepBudgetExceeded(
                f"proof search exceeded {self.max_steps} engine steps")

    def log(self, message: str) -> None:
        self.trace.append(message)


class _Ctx:
    """Internal search context: hypotheses + stats + recursion budget."""

    __slots__ = ("hyps", "stats")

    def __init__(self, hyps: Hypotheses, stats: ProofStats) -> None:
        self.hyps = hyps
        self.stats = stats


# ---------------------------------------------------------------------------
# Congruence-closure construction with Horn saturation
# ---------------------------------------------------------------------------

def _build_cc(factors: Sequence[Atom], ambient: Sequence[Atom],
              ctx: _Ctx) -> CongruenceClosure:
    """Closure of all equalities in ``factors``/``ambient`` + Horn axioms."""
    ctx.stats.cc_builds += 1
    cc = CongruenceClosure()
    for f in itertools.chain(factors, ambient):
        if isinstance(f, AEq):
            cc.merge(f.left, f.right)
    rel_atoms = [f for f in itertools.chain(factors, ambient)
                 if isinstance(f, ARel)]
    _saturate_horn(cc, rel_atoms, ctx.hyps)
    return cc


def _saturate_horn(cc: CongruenceClosure, rel_atoms: Sequence[ARel],
                   hyps: Hypotheses) -> None:
    """Apply key/FD axioms to a fixpoint."""
    changed = True
    while changed:
        changed = False
        for key in hyps.keys:
            atoms = [a for a in rel_atoms if a.name == key.rel]
            for a1, a2 in itertools.combinations(atoms, 2):
                if cc.equal(a1.arg, a2.arg):
                    continue
                k1 = TApp(key.proj, (a1.arg,), key.proj_schema)
                k2 = TApp(key.proj, (a2.arg,), key.proj_schema)
                if cc.equal(k1, k2):
                    cc.merge(a1.arg, a2.arg)
                    changed = True
        for fd in hyps.fds:
            atoms = [a for a in rel_atoms if a.name == fd.rel]
            for a1, a2 in itertools.combinations(atoms, 2):
                s1 = TApp(fd.source, (a1.arg,), fd.source_schema)
                s2 = TApp(fd.source, (a2.arg,), fd.source_schema)
                if not cc.equal(s1, s2):
                    continue
                t1 = TApp(fd.target, (a1.arg,), fd.target_schema)
                t2 = TApp(fd.target, (a2.arg,), fd.target_schema)
                if not cc.equal(t1, t2):
                    cc.merge(t1, t2)
                    changed = True


# ---------------------------------------------------------------------------
# Entailment of a single atom from a set of hypothesis factors
# ---------------------------------------------------------------------------

def _entails(factors: Sequence[Atom], cc: CongruenceClosure, atom: Atom,
             ambient: Sequence[Atom], ctx: _Ctx, depth: int) -> bool:
    """Do the hypothesis ``factors`` (with closure ``cc``) entail ``atom``?"""
    if cc.contradictory:
        return True  # the hypothesis denotes the empty type
    if depth <= 0:
        return False
    if isinstance(atom, AEq):
        if cc.equal(atom.left, atom.right):
            return True
        if _entails_eq_with_aggs(factors, cc, atom, ambient, ctx, depth):
            return True
        return _extract_from_squashes(factors, atom, ambient, ctx, depth)
    if isinstance(atom, APred):
        for f in factors:
            if isinstance(f, APred) and f.name == atom.name \
                    and len(f.args) == len(atom.args) \
                    and all(cc.equal(a, b) for a, b in zip(f.args, atom.args)):
                return True
        return _extract_from_squashes(factors, atom, ambient, ctx, depth)
    if isinstance(atom, ARel):
        for f in factors:
            if isinstance(f, ARel) and f.name == atom.name \
                    and cc.equal(f.arg, atom.arg):
                return True
        return False
    if isinstance(atom, ASquash):
        if _sum_entailed(factors, cc, atom.inner, ambient, ctx, depth):
            return True
        # ‖A‖ entails ‖B‖ whenever A entails B: open hypothesis squashes.
        # The opened factor is removed from the hypothesis list (its
        # content replaces it), so each truncation is opened at most once
        # along any search path.
        for f in factors:
            if not isinstance(f, ASquash):
                continue
            rest = [x for x in factors if x is not f]
            if _sum_implies_under(rest, f.inner, atom.inner, ambient, ctx,
                                  depth - 1):
                return True
        return False
    if isinstance(atom, ANeg):
        return _entails_neg(factors, cc, atom, ambient, ctx, depth)
    raise TypeError(f"not an atom: {atom!r}")


def _extract_from_squashes(factors: Sequence[Atom], atom: Atom,
                           ambient: Sequence[Atom], ctx: _Ctx,
                           depth: int) -> bool:
    """``F, ‖A‖ ⊢ P`` when every disjunct of A (with F) forces P.

    A truncated hypothesis is inhabited in every world where the clause is
    non-zero, so any proposition holding under *all* of its witnesses may
    be extracted — e.g. ``‖... × (k t = ℓ) × (k t = t.1)‖`` yields
    ``ℓ = t.1``.
    """
    if depth <= 1:
        return False
    target = NSum((NProduct((), (atom,)),))
    for f in factors:
        if not isinstance(f, ASquash):
            continue
        rest = [x for x in factors if x is not f]
        if _sum_implies_under(rest, f.inner, target, ambient, ctx, depth - 1):
            return True
    return False


def _entails_neg(factors: Sequence[Atom], cc: CongruenceClosure, atom: ANeg,
                 ambient: Sequence[Atom], ctx: _Ctx, depth: int) -> bool:
    """``F ⊢ (A → 0)`` — via some ``(B → 0)`` in F with ``F, A ⊢ B``."""
    for f in factors:
        if not isinstance(f, ANeg):
            continue
        if nsums_alpha_equal(f.inner, atom.inner):
            return True
        # It suffices that A implies B under F: then ¬B gives ¬A.
        if _sum_implies_under(factors, atom.inner, f.inner, ambient, ctx,
                              depth - 1):
            return True
    return False


def _sum_implies_under(hyp_factors: Sequence[Atom], antecedent: NSum,
                       consequent: NSum, ambient: Sequence[Atom], ctx: _Ctx,
                       depth: int) -> bool:
    """``F, A ⊢ B`` for truncated sums A, B — every disjunct of A yields B."""
    for p in antecedent.products:
        combined = list(hyp_factors) + list(p.factors)
        cc = _build_cc(combined, ambient, ctx)
        # Route through _entails so nested truncations in the opened
        # disjunct can themselves be opened (depth-bounded).
        if not _entails(combined, cc, ASquash(consequent), ambient, ctx,
                        depth):
            return False
    return True


# ---------------------------------------------------------------------------
# Existential instantiation (the paper's Ltac backtracking search)
# ---------------------------------------------------------------------------

def _sum_entailed(factors: Sequence[Atom], cc: CongruenceClosure,
                  target: NSum, ambient: Sequence[Atom], ctx: _Ctx,
                  depth: int) -> bool:
    """``F ⊢ ‖target‖`` — find a disjunct and a witness instantiation."""
    ctx.stats.hom_searches += 1
    pool = _candidate_pool(factors, ambient)
    for q in target.products:
        if _instantiate_product(factors, cc, q, pool, ambient, ctx, depth):
            return True
    return False


def _instantiate_product(factors: Sequence[Atom], cc: CongruenceClosure,
                         q: NProduct, pool: Dict[Schema, Dict[Term, None]],
                         ambient: Sequence[Atom], ctx: _Ctx,
                         depth: int) -> bool:
    """Backtracking search for witnesses of ``Σ q.vars. q.factors``."""
    variables = list(q.vars)

    def assign(index: int, sub: Substitution) -> bool:
        if index == len(variables):
            return all(
                _entails(factors, cc, atom_subst(f, sub), ambient, ctx,
                         depth - 1)
                for f in q.factors)
        var = variables[index]
        for candidate in _candidates_for(var.var_schema, pool):
            sub[var] = candidate
            if assign(index + 1, sub):
                return True
            del sub[var]
        return False

    return assign(0, {})


def implication_witness(source: NProduct, target: NSum,
                        hyps: Hypotheses = NO_HYPOTHESES
                        ) -> Optional[Tuple[NProduct, Substitution]]:
    """Find a witness for ``source ⊢ ‖target‖`` and return it.

    Returns the chosen disjunct of ``target`` and the instantiation of its
    bound variables by terms over ``source``'s variables — the containment
    mapping the paper visualizes in Figure 10.  ``None`` when the search
    fails.
    """
    ctx = _Ctx(hyps, ProofStats())
    factors = list(source.factors)
    cc = _build_cc(factors, (), ctx)
    pool = _candidate_pool(factors, ())
    for q in target.products:
        witness = _instantiation_witness(factors, cc, q, pool, (), ctx,
                                         MAX_DEPTH)
        if witness is not None:
            return q, witness
    return None


def _instantiation_witness(factors: Sequence[Atom], cc: CongruenceClosure,
                           q: NProduct, pool: Dict[Schema, Dict[Term, None]],
                           ambient: Sequence[Atom], ctx: _Ctx,
                           depth: int) -> Optional[Substitution]:
    variables = list(q.vars)

    def assign(index: int, sub: Substitution) -> Optional[Substitution]:
        if index == len(variables):
            ok = all(
                _entails(factors, cc, atom_subst(f, sub), ambient, ctx,
                         depth - 1)
                for f in q.factors)
            return dict(sub) if ok else None
        var = variables[index]
        for candidate in _candidates_for(var.var_schema, pool):
            sub[var] = candidate
            found = assign(index + 1, sub)
            if found is not None:
                return found
            del sub[var]
        return None

    return assign(0, {})


def _candidate_pool(factors: Sequence[Atom],
                    ambient: Sequence[Atom]) -> Dict[Schema, Dict[Term, None]]:
    """Ground terms available as witnesses, grouped by schema.

    Buckets are insertion-ordered dicts used as sets: with interned terms
    (cached hashes) membership is O(1) instead of a list scan.
    """
    pool: Dict[Schema, Dict[Term, None]] = {}

    def add(term: Term) -> None:
        for sub in iter_subterms(term):
            try:
                schema = sub.schema
            except TypeError:
                continue
            pool.setdefault(schema, {})[sub] = None

    for f in itertools.chain(factors, ambient):
        if isinstance(f, ARel):
            add(f.arg)
        elif isinstance(f, AEq):
            add(f.left)
            add(f.right)
        elif isinstance(f, APred):
            for a in f.args:
                add(a)
        # Squash/neg contents are not valid witness sources: their variables
        # are bound strictly inside the truncation.
    return pool


def _candidates_for(schema: Schema, pool: Dict[Schema, Dict[Term, None]],
                    fuel: int = 2) -> Iterator[Term]:
    """Witness candidates of a given schema, including built pairs."""
    yielded: set = set()
    for term in pool.get(schema, ()):
        if term not in yielded:
            yielded.add(term)
            yield term
    if isinstance(schema, Empty):
        unit = TUnit()
        if unit not in yielded:
            yield unit
    elif isinstance(schema, Node) and fuel > 0:
        for left in _candidates_for(schema.left, pool, fuel - 1):
            for right in _candidates_for(schema.right, pool, fuel - 1):
                built = TPair(left, right)
                if built not in yielded:
                    yielded.add(built)
                    yield built


# ---------------------------------------------------------------------------
# Equalities that require aggregate congruence (paper Sec. 5.1.2)
# ---------------------------------------------------------------------------

def _entails_eq_with_aggs(factors: Sequence[Atom], cc: CongruenceClosure,
                          atom: AEq, ambient: Sequence[Atom], ctx: _Ctx,
                          depth: int) -> bool:
    """Try proving ``l = r`` where one side involves an aggregate.

    Looks for aggregate terms in the congruence classes of both sides and
    compares their bodies as bags, after exporting the clause's equalities
    into the bodies' ambient context — this is the step "it follows that
    ``⟦k⟧ t2 = ⟦l⟧`` inside SUM" in the paper's aggregation proof.
    """
    left_aggs = _agg_members(cc, atom.left)
    right_aggs = _agg_members(cc, atom.right)
    if not left_aggs or not right_aggs:
        return False
    inner_ambient = list(ambient) + list(factors)
    for a1 in left_aggs:
        for a2 in right_aggs:
            if _aggs_equal(a1, a2, inner_ambient, ctx, depth - 1):
                return True
    return False


def _agg_members(cc: CongruenceClosure, term: Term) -> List[TAgg]:
    members = [m for m in cc.members(term) if isinstance(m, TAgg)]
    if isinstance(term, TAgg) and term not in members:
        members.append(term)
    return members


def _aggs_equal(a1: TAgg, a2: TAgg, ambient: Sequence[Atom], ctx: _Ctx,
                depth: int) -> bool:
    """Aggregates are equal when their denoted bags are equivalent."""
    if a1.name != a2.name or a1.ty != a2.ty:
        return False
    if depth <= 0:
        return False
    ctx.stats.agg_comparisons += 1
    common = fresh_var(a1.var.var_schema, "a")
    body1 = subst_uterm(a1.body, {a1.var: common})
    body2 = subst_uterm(a2.body, {a2.var: common})
    return _nsum_equiv(normalize(body1), normalize(body2), ambient, ctx,
                       depth)


# ---------------------------------------------------------------------------
# Absorption (Lemma 5.3) and clause reduction
# ---------------------------------------------------------------------------

def _absorb(product: NProduct, ambient: Sequence[Atom], ctx: _Ctx,
            depth: int) -> Optional[NProduct]:
    """Reduce a clause to a fixpoint; ``None`` marks the empty type.

    Steps, each justified in the module docstring: congruence-derived point
    elimination, duplicate-prop collapse, Lemma 5.3 drops, keyed-relation
    deduplication.
    """
    vars_list = list(product.vars)
    factors = list(product.factors)
    changed = True
    while changed:
        changed = False
        ctx.stats.absorptions += 1
        cc = _build_cc(factors, ambient, ctx)
        if cc.contradictory:
            return None

        # A clause containing both A and (B → 0) with A ⊢ B is empty.
        for f in factors:
            if not isinstance(f, ANeg):
                continue
            others = [x for x in factors if x is not f] + list(ambient)
            if _entails(others, cc, ASquash(f.inner), ambient, ctx, depth):
                return None

        # Reflexive equalities vanish.
        cleaned = [f for f in factors
                   if not (isinstance(f, AEq) and f.left == f.right)]
        if len(cleaned) != len(factors):
            factors = cleaned
            changed = True
            continue

        # Duplicate propositional factors collapse (P × P = P).
        seen_keys = set()
        dedup: List[Atom] = []
        for f in factors:
            if isinstance(f, (AEq, APred, ASquash, ANeg)):
                key = atom_alpha_key(f)
                if key in seen_keys:
                    changed = True
                    continue
                seen_keys.add(key)
            dedup.append(f)
        if changed:
            factors = dedup
            continue

        # Congruence-derived point elimination (Lemma 5.2 modulo cc): a
        # bound variable equal to a term not mentioning it gets substituted.
        for var in vars_list:
            replacement = _class_replacement(cc, var)
            if replacement is None:
                continue
            vars_list.remove(var)
            sub = {var: replacement}
            factors = [atom_subst(f, sub) for f in factors]
            changed = True
            break
        if changed:
            continue

        # Keys force set-valuedness (Sec. 4.2): ‖P‖ = P when every
        # factor of the squashed body is a proposition or a keyed
        # relation atom — each is ≤ 1, so the body is a mere prop and
        # the truncation is the identity.  This is what licenses
        # DISTINCT-elimination over keyed tables; it lives here rather
        # than in ``normalize()`` because it depends on the hypotheses.
        keyed_rels = ctx.hyps.keyed_relations()
        if keyed_rels:
            for i, f in enumerate(factors):
                if not isinstance(f, ASquash) \
                        or not isinstance(f.inner, NSum) \
                        or len(f.inner.products) != 1:
                    continue
                body = f.inner.products[0]
                if body.vars:
                    continue
                if all(isinstance(g, (AEq, APred, ASquash, ANeg))
                       or (isinstance(g, ARel) and g.name in keyed_rels)
                       for g in body.factors):
                    factors[i:i + 1] = list(body.factors)
                    changed = True
                    break
            if changed:
                continue

        # Keyed relations are set-valued: duplicate R-atoms collapse.  The
        # tuple equality that justified the collapse is recorded as an
        # explicit factor (it is a prop, so this preserves the value) —
        # otherwise the derived equality would be lost to later
        # congruence closures built from the reduced factor set.
        keyed = ctx.hyps.keyed_relations()
        for i, f in enumerate(factors):
            if not isinstance(f, ARel) or f.name not in keyed:
                continue
            for j in range(i + 1, len(factors)):
                g = factors[j]
                if isinstance(g, ARel) and g.name == f.name \
                        and cc.equal(f.arg, g.arg):
                    del factors[j]
                    if f.arg != g.arg:
                        factors.append(AEq(f.arg, g.arg))
                    changed = True
                    break
            if changed:
                break
        if changed:
            continue

        # Lemma 5.3: drop propositional factors entailed by the rest.
        for i, f in enumerate(factors):
            if not isinstance(f, (AEq, APred, ASquash, ANeg)):
                continue
            rest = factors[:i] + factors[i + 1:]
            rest_cc = _build_cc(rest, ambient, ctx)
            hyp = list(rest) + list(ambient)
            if _entails(hyp, rest_cc, f, ambient, ctx, depth):
                del factors[i]
                changed = True
                break

    # NProduct construction establishes the canonical factor order (the
    # interned order key), so no explicit sort is needed here.
    return NProduct(tuple(vars_list), tuple(factors))


def _class_replacement(cc: CongruenceClosure, var: TVar) -> Optional[Term]:
    """A term provably equal to ``var`` that does not mention it."""
    try:
        members = cc.members(var)
    except KeyError:
        return None
    best: Optional[Term] = None
    for m in members:
        if m == var or var in term_free_vars(m):
            continue
        if best is None or len(str(m)) < len(str(best)):
            best = m
    return best


# ---------------------------------------------------------------------------
# Clause and sum equivalence
# ---------------------------------------------------------------------------

def _products_equal(p1: NProduct, p2: NProduct, ambient: Sequence[Atom],
                    ctx: _Ctx, depth: int) -> bool:
    """Bag-level equality of two clauses.

    Pointer-equal and alpha-equal clauses short-circuit (interned nodes
    make both checks O(1) amortized); the bound-variable bijection search
    is pruned/ordered by per-variable degree signatures computed from the
    kernel's cached free-variable sets.
    """
    ctx.stats.product_matches += 1
    if p1 is p2 or product_alpha_key(p1) == product_alpha_key(p2):
        return True
    a1 = _absorb(p1, ambient, ctx, depth)
    a2 = _absorb(p2, ambient, ctx, depth)
    if a1 is None or a2 is None:
        return a1 is None and a2 is None
    if a1 is a2 or product_alpha_key(a1) == product_alpha_key(a2):
        return True
    if sorted(str(v.var_schema) for v in a1.vars) != \
            sorted(str(v.var_schema) for v in a2.vars):
        return False
    for bijection in _var_bijections(a1, a2, ambient, ctx):
        renamed = NProduct(
            tuple(bijection[v] for v in a2.vars),
            tuple(atom_subst(f, dict(bijection)) for f in a2.factors))
        if _matched_clause_bodies(a1, renamed, ambient, ctx, depth):
            return True
    return False


def _var_degree_signature(product: NProduct, var: TVar) -> Tuple:
    """Occurrence signature of one bound variable inside its clause.

    The multiset of (atom kind, symbol name) for the factors whose cached
    free-variable set contains ``var`` — the "degree" the bijection search
    uses to rank (and, in the rigid case, prune) candidate pairings.
    """
    tags = []
    for f in product.factors:
        if var not in atom_free_vars(f):
            continue
        if isinstance(f, ARel):
            tags.append(("rel", f.name))
        elif isinstance(f, APred):
            tags.append(("pred", f.name))
        elif isinstance(f, AEq):
            tags.append(("eq", ""))
        elif isinstance(f, ASquash):
            tags.append(("squash", ""))
        else:
            tags.append(("neg", ""))
    return tuple(sorted(tags))


def _is_rigid_pair(p1: NProduct, p2: NProduct, ambient: Sequence[Atom],
                   ctx: _Ctx) -> bool:
    """Can degree signatures *prune* (not merely rank) bijections?

    Without equality factors, ambient context, or key/FD hypotheses the
    congruence closures built during clause matching contain no merges, so
    relation/predicate atoms match only syntactically (modulo surjective
    pairing) — a variable can then only map onto one with the identical
    degree signature.  With any of those present, congruence can route an
    atom containing a variable onto one that does not mention its image,
    so signatures only order the search.
    """
    if ambient or ctx.hyps.keys or ctx.hyps.fds:
        return False
    return not any(isinstance(f, (AEq, ASquash, ANeg))
                   for f in itertools.chain(p1.factors, p2.factors))


def _var_bijections(a1: NProduct, a2: NProduct, ambient: Sequence[Atom],
                    ctx: _Ctx) -> Iterator[Dict[TVar, TVar]]:
    """Schema-respecting bijections from ``a2.vars`` onto ``a1.vars``.

    Candidates with matching degree signatures are tried first; when the
    clause pair is rigid (see :func:`_is_rigid_pair`) mismatching
    signatures are pruned outright, collapsing the k! search.
    """
    vars1, vars2 = a1.vars, a2.vars
    if len(vars1) != len(vars2):
        return
    if not vars1:
        yield {}
        return
    rigid = _is_rigid_pair(a1, a2, ambient, ctx)
    sig1 = {v: _var_degree_signature(a1, v) for v in vars1}
    sig2 = {v: _var_degree_signature(a2, v) for v in vars2}
    candidates: List[List[TVar]] = []
    for v2 in vars2:
        same = [v1 for v1 in vars1 if v1.var_schema == v2.var_schema
                and sig1[v1] == sig2[v2]]
        if rigid:
            pool = same
        else:
            rest = [v1 for v1 in vars1 if v1.var_schema == v2.var_schema
                    and sig1[v1] != sig2[v2]]
            pool = same + rest
        if not pool:
            return
        candidates.append(pool)

    used: set = set()
    assignment: Dict[TVar, TVar] = {}

    def assign(index: int) -> Iterator[Dict[TVar, TVar]]:
        if index == len(vars2):
            yield dict(assignment)
            return
        v2 = vars2[index]
        for v1 in candidates[index]:
            if v1 in used:
                continue
            used.add(v1)
            assignment[v2] = v1
            yield from assign(index + 1)
            used.discard(v1)
            del assignment[v2]

    yield from assign(0)


def _matched_clause_bodies(a1: NProduct, a2: NProduct,
                           ambient: Sequence[Atom], ctx: _Ctx,
                           depth: int) -> bool:
    """Factor comparison once the variable spaces are identified.

    Relation atoms must match bijectively (they carry multiplicity);
    propositional factors are compared as blocks by mutual entailment in
    the presence of the other side's full factor set.
    """
    rels1 = [f for f in a1.factors if isinstance(f, ARel)]
    rels2 = [f for f in a2.factors if isinstance(f, ARel)]
    if sorted(r.name for r in rels1) != sorted(r.name for r in rels2):
        return False
    cc1 = _build_cc(a1.factors, ambient, ctx)
    cc2 = _build_cc(a2.factors, ambient, ctx)
    if not _match_rel_multisets(rels1, rels2, cc1, cc2):
        return False
    props1 = [f for f in a1.factors if not isinstance(f, ARel)]
    props2 = [f for f in a2.factors if not isinstance(f, ARel)]
    hyp1 = list(a1.factors) + list(ambient)
    hyp2 = list(a2.factors) + list(ambient)
    return (
        all(_entails(hyp1, cc1, f, ambient, ctx, depth) for f in props2)
        and all(_entails(hyp2, cc2, f, ambient, ctx, depth) for f in props1))


def _match_rel_multisets(rels1: List[ARel], rels2: List[ARel],
                         cc1: CongruenceClosure,
                         cc2: CongruenceClosure) -> bool:
    """Perfect matching between relation atoms (names + congruent args).

    Atoms are indexed by relation name before the backtracking match:
    compatibility requires equal names, so the one big multiset matching
    decomposes exactly into independent per-name matchings (k₁!·k₂!·...
    instead of (k₁+k₂+...)!).  Pointer-equal atoms pair off first.
    """
    if len(rels1) != len(rels2):
        return False
    by_name1: Dict[str, List[ARel]] = {}
    for r in rels1:
        by_name1.setdefault(r.name, []).append(r)
    by_name2: Dict[str, List[ARel]] = {}
    for r in rels2:
        by_name2.setdefault(r.name, []).append(r)
    if set(by_name1) != set(by_name2):
        return False

    def compatible(x: ARel, y: ARel) -> bool:
        if x.arg is y.arg or x.arg == y.arg:
            return True
        return cc1.equal(x.arg, y.arg) and cc2.equal(x.arg, y.arg)

    for name, group1 in by_name1.items():
        group2 = by_name2[name]
        if len(group1) != len(group2):
            return False
        # Cancel pointer-identical atoms — with interning this resolves
        # the common case without touching the congruence closures.
        rest2 = list(group2)
        rest1 = []
        for x in group1:
            for j, y in enumerate(rest2):
                if y is not None and x is y:
                    rest2[j] = None
                    break
            else:
                rest1.append(x)
        remaining = [y for y in rest2 if y is not None]

        def match(index: int) -> bool:
            if index == len(rest1):
                return True
            for j, y in enumerate(remaining):
                if y is not None and compatible(rest1[index], y):
                    remaining[j] = None
                    if match(index + 1):
                        return True
                    remaining[j] = y
            return False

        if not match(0):
            return False
    return True


def _nsum_equiv(n1: NSum, n2: NSum, ambient: Sequence[Atom], ctx: _Ctx,
                depth: int) -> bool:
    """Bag-level equality of two normal forms: clause bijection.

    Pointer-equal sides short-circuit.  The bijection search tries
    alpha-equal candidates first — their :func:`_products_equal` call is
    an O(1) cached-key comparison — so re-associated unions resolve
    without invoking the prover; backtracking over the remaining
    candidates keeps the search complete.
    """
    if depth <= 0:
        return False
    if n1 is n2:
        # Interned normal forms: pointer equality decides the whole sum.
        # Counted as one match so the Figure 8 effort metric still
        # registers the (now O(1)) comparison.
        ctx.stats.product_matches += 1
        return True
    # Reduce clauses first so that semantically empty ones (contradictory
    # equalities, X × ¬X patterns) do not break the bijection count.
    products1 = [p for p in (_absorb(q, ambient, ctx, depth)
                             for q in n1.products) if p is not None]
    products2 = [p for p in (_absorb(q, ambient, ctx, depth)
                             for q in n2.products) if p is not None]
    if len(products1) != len(products2):
        return False
    keys2 = [product_alpha_key(q) for q in products2]
    remaining: List[Optional[NProduct]] = list(products2)

    def match(index: int) -> bool:
        if index == len(products1):
            return True
        key1 = product_alpha_key(products1[index])
        order = sorted(range(len(remaining)),
                       key=lambda j: keys2[j] != key1)
        for j in order:
            q = remaining[j]
            if q is not None and _products_equal(products1[index], q,
                                                 ambient, ctx, depth):
                remaining[j] = None
                if match(index + 1):
                    return True
                remaining[j] = q
        return False

    return match(0)


def _nsum_iff(n1: NSum, n2: NSum, ambient: Sequence[Atom], ctx: _Ctx,
              depth: int) -> bool:
    """Prop-level equivalence ``‖n1‖ = ‖n2‖`` by mutual implication."""
    return (_sum_implies_under((), n1, n2, ambient, ctx, depth)
            and _sum_implies_under((), n2, n1, ambient, ctx, depth))


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check, with the effort trace."""

    equal: bool
    stats: ProofStats
    lhs_normal: NSum
    rhs_normal: NSum


def decide_nsums(n1: NSum, n2: NSum, hyps: Hypotheses = NO_HYPOTHESES, *,
                 depth: int = MAX_DEPTH,
                 stats: Optional[ProofStats] = None) -> EquivalenceResult:
    """Decide equality of two already-normalized forms.

    The workhorse behind :func:`check_uterm_equivalence`, exposed so
    callers that normalize once and stage several decision attempts (the
    verification pipeline) do not pay for re-normalization.  ``depth``
    bounds the nesting of the entailment search and ``stats`` may carry a
    step budget (see :class:`ProofStats`), in which case the search raises
    :class:`StepBudgetExceeded` instead of completing.
    """
    if stats is None:
        stats = ProofStats()
    ctx = _Ctx(hyps, stats)
    equal = _nsum_equiv(n1, n2, (), ctx, depth)
    stats.log("clause matching " + ("succeeded" if equal else "failed"))
    return EquivalenceResult(equal=equal, stats=stats, lhs_normal=n1,
                             rhs_normal=n2)


def check_uterm_equivalence(lhs: UTerm, rhs: UTerm,
                            hyps: Hypotheses = NO_HYPOTHESES, *,
                            depth: int = MAX_DEPTH,
                            stats: Optional[ProofStats] = None
                            ) -> EquivalenceResult:
    """Decide equality of two UniNomial terms (sound, incomplete)."""
    from .intern import intern_stats
    from .normalize import normalize_stats

    if stats is None:
        stats = ProofStats()
    before = normalize_stats()
    n1 = normalize(lhs)
    n2 = normalize(rhs)
    after = normalize_stats()
    # Difference the monotonic lifetime counters: a concurrent
    # ``KernelLRU.reset()`` (metrics window rotation) zeroes the window
    # counters mid-check, which would under-report here.
    stats.normalize_hits += int(
        after["lifetime_hits"] - before["lifetime_hits"])
    stats.normalize_misses += int(
        after["lifetime_misses"] - before["lifetime_misses"])
    stats.interned_nodes = intern_stats()["interned_nodes"]
    stats.log(f"normalized LHS to {len(n1.products)} clause(s)")
    stats.log(f"normalized RHS to {len(n2.products)} clause(s)")
    return decide_nsums(n1, n2, hyps, depth=depth, stats=stats)


def uterms_equivalent(lhs: UTerm, rhs: UTerm,
                      hyps: Hypotheses = NO_HYPOTHESES) -> bool:
    """Boolean shorthand for :func:`check_uterm_equivalence`."""
    return check_uterm_equivalence(lhs, rhs, hyps).equal


def align_denotations(d1, d2):
    """Rename the second denotation's ``g``/``t`` onto the first's.

    Both denotations must have the same context and output schemas (this is
    checked); returns the pair of bodies over a shared variable space.
    """
    if d1.ctx != d2.ctx:
        raise SchemaMismatchError(
            f"context schemas differ: {d1.ctx} vs {d2.ctx}")
    if d1.schema != d2.schema:
        raise SchemaMismatchError(
            f"output schemas differ: {d1.schema} vs {d2.schema}")
    sub = {d2.g: d1.g, d2.t: d1.t}
    return d1.body, subst_uterm(d2.body, sub)


def check_query_equivalence(q1, q2, ctx_schema=None,
                            hyps: Hypotheses = NO_HYPOTHESES, *,
                            depth: int = MAX_DEPTH,
                            stats: Optional[ProofStats] = None
                            ) -> EquivalenceResult:
    """Denote two HoTTSQL queries and decide their equivalence.

    This is the end-to-end entry point reproducing the paper's workflow:
    denote (Figure 7), normalize (Sec. 3.4 identities + Lemmas 5.1/5.2),
    then decide (tactics + Ltac-style search).
    """
    from .denote import denote_closed
    from .intern import kernel_backend
    from .schema import EMPTY

    ctx_schema = EMPTY if ctx_schema is None else ctx_schema
    if kernel_backend() == "arena":
        from .arena import ArenaUnsupported
        try:
            return _check_query_arena(q1, q2, ctx_schema, hyps,
                                      depth=depth, stats=stats)
        except ArenaUnsupported:
            pass  # exotic payload: fall back to the object pipeline
    d1 = denote_closed(q1, ctx_schema)
    d2 = denote_closed(q2, ctx_schema)
    lhs, rhs = align_denotations(d1, d2)
    return check_uterm_equivalence(lhs, rhs, hyps, depth=depth, stats=stats)


def _check_query_arena(q1, q2, ctx_schema, hyps: Hypotheses, *,
                       depth: int, stats: Optional[ProofStats]
                       ) -> EquivalenceResult:
    """Arena-backend fast path: denote, align and normalize as flat ids.

    Mirrors the object route (``denote_closed`` ×2 → ``align_denotations``
    → ``check_uterm_equivalence``) without ever materialising the
    denotation bodies as interned objects — only the two normal forms are
    decoded, for :func:`decide_nsums` and the result payload.  Raises
    :class:`~repro.core.arena.ArenaUnsupported` for payloads the arena
    cannot hold; the caller falls back to the object path.
    """
    from .arena import arena, arena_denote_closed
    from .intern import intern_stats
    from .normalize import normalize_arena_id, normalize_stats

    if stats is None:
        stats = ProofStats()
    ar = arena()
    s1, g1, t1, b1 = arena_denote_closed(q1, ctx_schema)
    s2, g2, t2, b2 = arena_denote_closed(q2, ctx_schema)
    if s1 != s2:
        raise SchemaMismatchError(
            f"output schemas differ: {s1} vs {s2}")
    rhs = ar.align_body(b2, g2, t2, g1, t1)
    before = normalize_stats()
    n1 = normalize_arena_id(ar, b1)
    n2 = normalize_arena_id(ar, rhs)
    after = normalize_stats()
    stats.normalize_hits += int(
        after["lifetime_hits"] - before["lifetime_hits"])
    stats.normalize_misses += int(
        after["lifetime_misses"] - before["lifetime_misses"])
    stats.interned_nodes = intern_stats()["interned_nodes"]
    stats.log(f"normalized LHS to {len(n1.products)} clause(s)")
    stats.log(f"normalized RHS to {len(n2.products)} clause(s)")
    return decide_nsums(n1, n2, hyps, depth=depth, stats=stats)


def queries_equivalent(q1, q2, ctx_schema=None,
                       hyps: Hypotheses = NO_HYPOTHESES) -> bool:
    """Boolean shorthand for :func:`check_query_equivalence`."""
    return check_query_equivalence(q1, q2, ctx_schema, hyps).equal
